// Figure 2 — IP addresses allocated to RIPE Atlas probes.
//
// Regenerates the sorted per-probe allocation-count curve, the knee found by
// kneedle, and the §3.2 funnel statistics around it.
#include "bench_common.h"

#include "atlas/fleet.h"
#include "dynadetect/pipeline.h"
#include "internet/world.h"

int main() {
  using namespace reuse;
  bench::print_banner("Figure 2", "addresses allocated to Atlas probes");

  // Figure 2 needs neither the crawl nor the ecosystem: world + fleet only.
  auto config = analysis::bench_scenario_config(bench::kBenchSeed);
  const inet::World world(config.world);
  const atlas::AtlasFleet fleet(world, config.fleet);
  const dynadetect::PipelineResult result =
      dynadetect::run_pipeline(fleet.compressed_log(), config.pipeline);

  // The curve, on a log y-axis as published.
  net::ChartSeries series;
  series.label = "allocations per probe (sorted desc)";
  const auto& curve = result.allocation_curve;
  const std::size_t stride = std::max<std::size_t>(1, curve.size() / 160);
  for (std::size_t i = 0; i < curve.size(); i += stride) {
    series.points.emplace_back(static_cast<double>(i), curve[i]);
  }
  net::ChartOptions options;
  options.log_y = true;
  options.x_label = "probes (sorted)";
  options.y_label = "(#) of allocated addresses";
  std::cout << net::render_chart({series}, options) << '\n';

  std::size_t no_change = 0;
  for (const double count : curve) no_change += count < 2.0;
  const double single_as = static_cast<double>(result.probes_single_as);

  analysis::PaperComparison report("Figure 2 / §3.2 pipeline statistics");
  report.row("probes observed", "15,703",
             net::with_thousands(static_cast<std::int64_t>(result.probes_total)));
  report.row("addresses allocated (single-AS probes)", "311K",
             net::compact_count(static_cast<double>(result.single_as_addresses)));
  report.row("probes with multi-AS allocations", "13.1%",
             net::percent(static_cast<double>(result.probes_multi_as) /
                          static_cast<double>(result.probes_total)));
  report.row("single-AS probes with no change", "59%",
             net::percent(static_cast<double>(no_change) / single_as));
  report.row("single-AS probes with multiple changes", "27%",
             net::percent(static_cast<double>(result.probes_with_changes) /
                          single_as));
  report.row("knee of the allocation curve", "8 allocations",
             std::to_string(result.knee_allocations) + " allocations",
             "same structural point; see EXPERIMENTS.md");
  report.row("probes at/above the knee", "16.6%",
             net::percent(static_cast<double>(result.probes_above_knee) /
                          single_as));
  report.row("probes changing addresses daily", "4%",
             net::percent(static_cast<double>(result.probes_daily) / single_as));
  report.row("avg addresses per qualifying probe", "78",
             net::fixed(result.probes_daily == 0
                            ? 0.0
                            : static_cast<double>(result.qualifying_addresses) /
                                  static_cast<double>(result.probes_daily),
                        1));
  std::cout << report.to_string();
  return 0;
}
