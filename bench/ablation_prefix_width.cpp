// Ablation — the /24 expansion choice (§3.2).
//
// The paper expands each qualifying probe's addresses to the covering /24,
// arguing contiguous addresses are administered together. Narrower expansion
// undercounts the pool; wider expansion swallows unrelated space. Ground
// truth quantifies the trade-off.
#include "bench_common.h"

#include "atlas/fleet.h"
#include "dynadetect/pipeline.h"
#include "internet/world.h"

int main() {
  using namespace reuse;
  bench::print_banner("Ablation", "dynamic-prefix expansion width");

  auto config = analysis::bench_scenario_config(bench::kBenchSeed);
  const inet::World world(config.world);
  const atlas::AtlasFleet fleet(world, config.fleet);

  net::AsciiTable table({"expansion", "prefixes", "addresses covered",
                         "share truly dynamic", "share of pool space found"});

  // Ground truth: total address space of fast pools (the detection target).
  std::uint64_t pool_space = 0;
  for (const auto& prefix : world.fast_dynamic_prefixes().to_vector()) {
    pool_space += prefix.size();
  }

  for (const int width : {28, 26, 24, 22, 20}) {
    dynadetect::PipelineConfig pipeline_config = config.pipeline;
    pipeline_config.expand_prefix_length = width;
    const dynadetect::PipelineResult result =
        dynadetect::run_pipeline(fleet.compressed_log(), pipeline_config);
    std::uint64_t covered = 0;
    std::uint64_t truly_dynamic = 0;
    for (const auto& prefix : result.dynamic_prefixes.to_vector()) {
      covered += prefix.size();
      // Count addresses inside real pool space, chunk by chunk (chunks are
      // the finer of the prefix itself and /24 alignment, since pool
      // membership is /24-granular in the world).
      for (std::uint64_t offset = 0; offset < prefix.size(); offset += 256) {
        if (world.dynamic_prefixes().contains_address(
                prefix.address_at(offset))) {
          truly_dynamic += std::min<std::uint64_t>(256, prefix.size() - offset);
        }
      }
    }
    table.add_row(
        {"/" + std::to_string(width),
         std::to_string(result.dynamic_prefixes.size()),
         net::with_thousands(static_cast<std::int64_t>(covered)),
         covered == 0 ? "n/a"
                      : net::percent(static_cast<double>(truly_dynamic) /
                                     static_cast<double>(covered)),
         pool_space == 0
             ? "n/a"
             : net::percent(static_cast<double>(
                                std::min(truly_dynamic, pool_space)) /
                            static_cast<double>(pool_space))});
  }
  std::cout << table.to_string() << '\n'
            << "Reading: /24 is the widest expansion that stays (nearly)\n"
               "fully inside true pool space in this world; wider prefixes\n"
               "start absorbing neighbouring allocations (overcounting),\n"
               "narrower ones leave most of the pool undetected — the\n"
               "paper's conservative-coverage argument.\n";
  return 0;
}
