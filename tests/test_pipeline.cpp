#include "dynadetect/pipeline.h"

#include <gtest/gtest.h>

#include <vector>

namespace reuse::dynadetect {
namespace {

using atlas::ConnectionRecord;

net::Ipv4Address addr(const char* text) { return *net::Ipv4Address::parse(text); }

constexpr std::int64_t kDay = 86400;

// Builds a record list for one probe with allocations at fixed times.
void add_history(std::vector<ConnectionRecord>& records, atlas::ProbeId probe,
                 inet::Asn asn,
                 const std::vector<std::pair<std::int64_t, const char*>>& hops) {
  for (const auto& [time, address] : hops) {
    records.push_back(ConnectionRecord{time, probe, addr(address), asn});
  }
}

TEST(BuildHistories, CollapsesKeepalivesAndSortsTime) {
  std::vector<ConnectionRecord> records;
  // Out-of-order input with duplicate consecutive addresses once sorted.
  add_history(records, 1, 10,
              {{2 * kDay, "10.0.0.2"},
               {0, "10.0.0.1"},
               {1 * kDay, "10.0.0.1"},  // keepalive, collapses
               {3 * kDay, "10.0.0.1"}});
  const auto histories = build_histories(records);
  ASSERT_EQ(histories.size(), 1u);
  ASSERT_EQ(histories[0].allocation_count(), 3u);  // .1, .2, .1
  EXPECT_EQ(histories[0].allocations[0].address, addr("10.0.0.1"));
  EXPECT_EQ(histories[0].allocations[1].address, addr("10.0.0.2"));
  EXPECT_EQ(histories[0].allocations[2].address, addr("10.0.0.1"));
  EXPECT_EQ(histories[0].distinct_addresses(), 2u);
}

TEST(BuildHistories, SeparatesProbes) {
  std::vector<ConnectionRecord> records;
  add_history(records, 2, 10, {{0, "10.0.0.1"}});
  add_history(records, 1, 10, {{0, "10.0.1.1"}});
  const auto histories = build_histories(records);
  ASSERT_EQ(histories.size(), 2u);
  EXPECT_EQ(histories[0].probe_id, 1u);
  EXPECT_EQ(histories[1].probe_id, 2u);
}

TEST(ProbeHistory, MultiAsDetection) {
  std::vector<ConnectionRecord> records;
  add_history(records, 1, 10, {{0, "10.0.0.1"}});
  records.push_back(ConnectionRecord{kDay, 1, addr("10.0.0.2"), 20});
  const auto histories = build_histories(records);
  EXPECT_TRUE(histories[0].multi_as());
}

TEST(ProbeHistory, MeanChangeInterval) {
  std::vector<ConnectionRecord> records;
  add_history(records, 1, 10,
              {{0, "10.0.0.1"}, {kDay, "10.0.0.2"}, {4 * kDay, "10.0.0.3"}});
  const auto histories = build_histories(records);
  const auto interval = histories[0].mean_change_interval();
  ASSERT_TRUE(interval.has_value());
  EXPECT_EQ(interval->count(), 2 * kDay);  // 4 days / 2 changes
}

// A handcrafted pipeline scenario with every probe archetype.
class PipelineScenario : public ::testing::Test {
 protected:
  static std::vector<ConnectionRecord> records() {
    std::vector<ConnectionRecord> records;
    // Probe 1: fast churner, 10 allocations, 12h apart, single AS.
    for (int i = 0; i < 10; ++i) {
      records.push_back(ConnectionRecord{
          i * kDay / 2, 1,
          net::Ipv4Address(addr("10.1.0.0").value() + static_cast<std::uint32_t>(i)),
          10});
    }
    // Probe 2: slow churner — 10 allocations but 10 days apart (fails daily).
    for (int i = 0; i < 10; ++i) {
      records.push_back(ConnectionRecord{
          i * 10 * kDay, 2,
          net::Ipv4Address(addr("10.2.0.0").value() + static_cast<std::uint32_t>(i)),
          10});
    }
    // Probe 3: relocated — allocations across two ASes (fails same-AS).
    for (int i = 0; i < 10; ++i) {
      records.push_back(ConnectionRecord{
          i * kDay / 2, 3,
          net::Ipv4Address(addr("10.3.0.0").value() + static_cast<std::uint32_t>(i)),
          static_cast<inet::Asn>(i < 5 ? 10 : 20)});
    }
    // Probe 4: stable, one address the whole time.
    for (int i = 0; i < 20; ++i) {
      records.push_back(ConnectionRecord{i * kDay, 4, addr("10.4.0.1"), 10});
    }
    // Probe 5: two allocations only (below any sensible knee).
    records.push_back(ConnectionRecord{0, 5, addr("10.5.0.1"), 10});
    records.push_back(ConnectionRecord{kDay / 2, 5, addr("10.5.0.2"), 10});
    return records;
  }

  static PipelineResult run(int min_allocations = 8) {
    PipelineConfig config;
    config.min_allocations = min_allocations;  // fixed: tiny curves have no knee
    return run_pipeline(records(), config);
  }
};

TEST_F(PipelineScenario, FunnelCountsAreExact) {
  const PipelineResult result = run();
  EXPECT_EQ(result.probes_total, 5u);
  EXPECT_EQ(result.probes_multi_as, 1u);   // probe 3
  EXPECT_EQ(result.probes_single_as, 4u);
  EXPECT_EQ(result.probes_with_changes, 3u);  // probes 1, 2, 5
  EXPECT_EQ(result.knee_allocations, 8);
  EXPECT_EQ(result.probes_above_knee, 2u);  // probes 1, 2
  EXPECT_EQ(result.probes_daily, 1u);       // probe 1 only
  ASSERT_EQ(result.qualifying_probes.size(), 1u);
  EXPECT_EQ(result.qualifying_probes[0], 1u);
  EXPECT_EQ(result.qualifying_addresses, 10u);
}

TEST_F(PipelineScenario, EmitsOnlyQualifyingPrefixes) {
  const PipelineResult result = run();
  EXPECT_EQ(result.dynamic_prefixes.size(), 1u);  // all of probe 1 in 10.1.0/24
  EXPECT_TRUE(result.dynamic_prefixes.contains_prefix(
      *net::Ipv4Prefix::parse("10.1.0.0/24")));
  EXPECT_FALSE(result.dynamic_prefixes.contains_prefix(
      *net::Ipv4Prefix::parse("10.2.0.0/24")));
  EXPECT_FALSE(result.dynamic_prefixes.contains_prefix(
      *net::Ipv4Prefix::parse("10.3.0.0/24")));
}

TEST_F(PipelineScenario, StagePrefixSetsAreMonotone) {
  const PipelineResult result = run();
  // dynamic ⊆ above-knee ⊆ single-as-with-changes ⊆ all.
  for (const auto& prefix : result.dynamic_prefixes.to_vector()) {
    EXPECT_TRUE(result.above_knee_prefixes.contains_prefix(prefix));
  }
  for (const auto& prefix : result.above_knee_prefixes.to_vector()) {
    EXPECT_TRUE(result.single_as_change_prefixes.contains_prefix(prefix));
  }
  for (const auto& prefix : result.single_as_change_prefixes.to_vector()) {
    EXPECT_TRUE(result.all_probe_prefixes.contains_prefix(prefix));
  }
  EXPECT_EQ(result.all_probe_prefixes.size(), 5u);
}

TEST_F(PipelineScenario, KneeOfTwoSelectsSlowChurnersToo) {
  const PipelineResult relaxed = run(2);
  EXPECT_EQ(relaxed.probes_above_knee, 3u);       // probes 1, 2, 5
  EXPECT_EQ(relaxed.probes_daily, 2u);            // probes 1 and 5 change daily
}

TEST_F(PipelineScenario, WiderExpansionCoversMore) {
  PipelineConfig config;
  config.min_allocations = 8;
  config.expand_prefix_length = 16;
  const PipelineResult result = run_pipeline(records(), config);
  EXPECT_TRUE(result.dynamic_prefixes.contains_prefix(
      *net::Ipv4Prefix::parse("10.1.0.0/16")));
  EXPECT_TRUE(result.dynamic_prefixes.contains_address(addr("10.1.200.1")));
}

TEST(KneeThreshold, FallsBackOnDegenerateCurves) {
  const std::vector<double> tiny{5.0, 1.0};
  EXPECT_EQ(knee_allocation_threshold(tiny, 1.0, 8), 8);
  const std::vector<double> flat(100, 1.0);
  EXPECT_EQ(knee_allocation_threshold(flat, 1.0, 8), 8);
}

TEST(KneeThreshold, FindsChurnerBoundaryOnSyntheticCurve) {
  // 100 churners with counts 300..~10, then 900 stable probes at 1: the
  // threshold must land near the churner/stable junction, far below the
  // churner maximum.
  std::vector<double> curve;
  for (int i = 0; i < 100; ++i) curve.push_back(300.0 / (1.0 + 0.3 * i));
  for (int i = 0; i < 900; ++i) curve.push_back(1.0);
  const int threshold = knee_allocation_threshold(curve, 1.0, 8);
  EXPECT_GE(threshold, 2);
  EXPECT_LE(threshold, 30);
}

TEST(Pipeline, EmptyInputIsSafe) {
  const PipelineResult result =
      run_pipeline(std::span<const atlas::ConnectionRecord>{});
  EXPECT_EQ(result.probes_total, 0u);
  EXPECT_EQ(result.dynamic_prefixes.size(), 0u);
}

// --- gap-capped mean change interval (log-outage robustness) ---------------

TEST(ProbeHistory, GapCapZeroMatchesLegacyMean) {
  std::vector<ConnectionRecord> records;
  add_history(records, 1, 10,
              {{0, "10.0.0.1"}, {kDay, "10.0.0.2"}, {4 * kDay, "10.0.0.3"}});
  const auto histories = build_histories(records);
  std::size_t excluded = 99;
  const auto capped =
      histories[0].mean_change_interval(net::Duration(0), &excluded);
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->count(), histories[0].mean_change_interval()->count());
  EXPECT_EQ(excluded, 0u);
}

TEST(ProbeHistory, LongGapIsExcludedFromTheMean) {
  // Daily churn interrupted by a 28-day hole (controller outage): the plain
  // mean is dominated by the hole; the capped mean sees the real cadence.
  std::vector<ConnectionRecord> records;
  add_history(records, 1, 10,
              {{0, "10.0.0.1"},
               {kDay, "10.0.0.2"},
               {2 * kDay, "10.0.0.3"},
               {30 * kDay, "10.0.0.4"}});
  const auto histories = build_histories(records);
  EXPECT_EQ(histories[0].mean_change_interval()->count(), 10 * kDay);
  std::size_t excluded = 0;
  const auto capped =
      histories[0].mean_change_interval(net::Duration::days(7), &excluded);
  ASSERT_TRUE(capped.has_value());
  EXPECT_EQ(capped->count(), kDay);
  EXPECT_EQ(excluded, 1u);
}

TEST(ProbeHistory, AllGapsExcludedIsNullopt) {
  std::vector<ConnectionRecord> records;
  add_history(records, 1, 10, {{0, "10.0.0.1"}, {30 * kDay, "10.0.0.2"}});
  const auto histories = build_histories(records);
  std::size_t excluded = 0;
  EXPECT_FALSE(histories[0]
                   .mean_change_interval(net::Duration::days(7), &excluded)
                   .has_value());
  EXPECT_EQ(excluded, 1u);
}

TEST(PipelineGapCap, RescuesAProbeSplitByALogGap) {
  // Probe 1: daily churn, but a 40-day hole mid-history. Probe 2: a slow
  // probe that stays slow either way.
  std::vector<ConnectionRecord> records;
  std::vector<std::pair<std::int64_t, const char*>> hops;
  const char* addresses[] = {"10.1.0.1", "10.1.0.2", "10.1.0.3", "10.1.0.4",
                             "10.1.0.5", "10.1.0.6", "10.1.0.7", "10.1.0.8"};
  for (int i = 0; i < 4; ++i) hops.push_back({i * kDay, addresses[i]});
  for (int i = 4; i < 8; ++i) {
    hops.push_back({(40 + i) * kDay, addresses[i]});
  }
  add_history(records, 1, 10, hops);
  add_history(records, 2, 20,
              {{0, "10.2.0.1"},
               {5 * kDay, "10.2.0.2"},
               {10 * kDay, "10.2.0.3"},
               {15 * kDay, "10.2.0.4"},
               {20 * kDay, "10.2.0.5"},
               {25 * kDay, "10.2.0.6"},
               {30 * kDay, "10.2.0.7"},
               {35 * kDay, "10.2.0.8"}});

  PipelineConfig published;
  published.min_allocations = 8;
  const PipelineResult strict = run_pipeline(records, published);
  // The hole inflates probe 1's mean change interval past a day: dropped.
  EXPECT_EQ(strict.probes_daily, 0u);
  EXPECT_EQ(strict.change_gaps_capped, 0u);

  PipelineConfig capped = published;
  capped.max_change_gap = net::Duration::days(7);
  const PipelineResult tolerant = run_pipeline(records, capped);
  EXPECT_EQ(tolerant.probes_daily, 1u);
  EXPECT_EQ(tolerant.probes_gap_affected, 1u);  // probe 2's gaps fit the cap
  EXPECT_GE(tolerant.change_gaps_capped, 1u);
  ASSERT_EQ(tolerant.qualifying_probes.size(), 1u);
  EXPECT_EQ(tolerant.qualifying_probes[0], 1u);
}

}  // namespace
}  // namespace reuse::dynadetect
