#include "netbase/flags.h"

#include <gtest/gtest.h>

namespace reuse::net {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return argv;
}

TEST(FlagParser, ParsesEqualsAndSpaceForms) {
  FlagParser parser;
  parser.define("alpha", "first");
  parser.define("beta", "second");
  const auto argv = argv_of({"--alpha=1", "--beta", "two"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get("alpha"), "1");
  EXPECT_EQ(parser.get("beta"), "two");
  EXPECT_TRUE(parser.has("alpha"));
}

TEST(FlagParser, DefaultsApplyWhenUnset) {
  FlagParser parser;
  parser.define("alpha", "first", "42");
  const auto argv = argv_of({});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(parser.has("alpha"));
  EXPECT_EQ(parser.get("alpha"), "42");
  EXPECT_EQ(parser.get_int("alpha"), 42);
}

TEST(FlagParser, BooleanFlags) {
  FlagParser parser;
  parser.define_bool("verbose", "chatty");
  parser.define_bool("quiet", "silent");
  const auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.get_bool("verbose"));
  EXPECT_FALSE(parser.get_bool("quiet"));
}

TEST(FlagParser, BooleanWithExplicitValue) {
  FlagParser parser;
  parser.define_bool("verbose", "chatty");
  const auto argv = argv_of({"--verbose=yes"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.get_bool("verbose"));
}

TEST(FlagParser, UnknownFlagIsAnError) {
  FlagParser parser;
  parser.define("alpha", "first");
  const auto argv = argv_of({"--oops=1"});
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(parser.error().find("oops"), std::string::npos);
}

TEST(FlagParser, MissingValueIsAnError) {
  FlagParser parser;
  parser.define("alpha", "first");
  const auto argv = argv_of({"--alpha"});
  EXPECT_FALSE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(parser.error().find("alpha"), std::string::npos);
}

TEST(FlagParser, PositionalArgumentsAreCollected) {
  FlagParser parser;
  parser.define("alpha", "first");
  const auto argv = argv_of({"one", "--alpha=x", "two"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"one", "two"}));
}

TEST(FlagParser, NumericConversionFailuresAreNullopt) {
  FlagParser parser;
  parser.define("n", "count", "abc");
  parser.define("x", "rate", "1.5");
  const auto argv = argv_of({});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(parser.get_int("n").has_value());
  EXPECT_EQ(parser.get_double("x"), 1.5);
  EXPECT_FALSE(parser.get_double("n").has_value());
}

TEST(FlagParser, UsageListsEveryFlag) {
  FlagParser parser;
  parser.define("alpha", "the alpha flag", "7");
  parser.define_bool("verbose", "chatty");
  const std::string usage = parser.usage("tool", "does things");
  EXPECT_NE(usage.find("--alpha=<value>"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("does things"), std::string::npos);
}

TEST(FlagParser, NegativeNumbersParse) {
  FlagParser parser;
  parser.define("n", "count");
  const auto argv = argv_of({"--n=-5"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get_int("n"), -5);
}

TEST(FlagParser, MultiFlagCollectsEveryOccurrenceInOrder) {
  FlagParser parser;
  parser.define_multi("axis", "repeatable");
  parser.define("other", "scalar");
  const auto argv = argv_of(
      {"--axis=days=60,120", "--other=x", "--axis", "cgn_share=0.2"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get_multi("axis"),
            (std::vector<std::string>{"days=60,120", "cgn_share=0.2"}));
  // get() on a multi flag keeps the scalar convention: last occurrence.
  EXPECT_EQ(parser.get("axis"), "cgn_share=0.2");
  EXPECT_TRUE(parser.has("axis"));
}

TEST(FlagParser, MultiFlagUnsetIsEmpty) {
  FlagParser parser;
  parser.define_multi("axis", "repeatable");
  const auto argv = argv_of({});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(parser.get_multi("axis").empty());
  EXPECT_TRUE(parser.get_multi("never-defined").empty());
  EXPECT_FALSE(parser.has("axis"));
}

TEST(FlagParser, ScalarFlagsDoNotAccumulate) {
  FlagParser parser;
  parser.define("alpha", "scalar");
  const auto argv = argv_of({"--alpha=1", "--alpha=2"});
  ASSERT_TRUE(parser.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(parser.get("alpha"), "2");
  EXPECT_TRUE(parser.get_multi("alpha").empty());
}

TEST(ParseJobs, AcceptsNonNegativeIntegersOnly) {
  EXPECT_EQ(parse_jobs("0"), 0);  // 0 = all hardware threads
  EXPECT_EQ(parse_jobs("1"), 1);
  EXPECT_EQ(parse_jobs("8"), 8);
  EXPECT_EQ(parse_jobs("64"), 64);
  EXPECT_FALSE(parse_jobs("-1").has_value());
  EXPECT_FALSE(parse_jobs("-8").has_value());
  EXPECT_FALSE(parse_jobs("").has_value());
  EXPECT_FALSE(parse_jobs("four").has_value());
  EXPECT_FALSE(parse_jobs("4x").has_value());
  EXPECT_FALSE(parse_jobs("4 ").has_value());
  EXPECT_FALSE(parse_jobs(" 4").has_value());
  EXPECT_FALSE(parse_jobs("4.5").has_value());
  // Overflow must not wrap into a plausible value.
  EXPECT_FALSE(parse_jobs("99999999999999999999").has_value());
}

TEST(ParseMetricsFormat, AcceptsExactlyTheTwoEncodings) {
  EXPECT_EQ(parse_metrics_format("json"), MetricsFormat::kJson);
  EXPECT_EQ(parse_metrics_format("prometheus"), MetricsFormat::kPrometheus);
}

TEST(ParseMetricsFormat, RejectsEverythingElse) {
  // Same convention as parse_jobs: a typo must fail fast (callers exit 2),
  // never fall back silently to the default encoding.
  EXPECT_FALSE(parse_metrics_format("").has_value());
  EXPECT_FALSE(parse_metrics_format("JSON").has_value());
  EXPECT_FALSE(parse_metrics_format("Prometheus").has_value());
  EXPECT_FALSE(parse_metrics_format("json ").has_value());
  EXPECT_FALSE(parse_metrics_format(" json").has_value());
  EXPECT_FALSE(parse_metrics_format("jsonl").has_value());
  EXPECT_FALSE(parse_metrics_format("yaml").has_value());
  EXPECT_FALSE(parse_metrics_format("prom").has_value());
}

TEST(ParseBoundedInt, AcceptsExactlyTheClosedRange) {
  EXPECT_EQ(parse_bounded_int("1", 1, 4096), 1);
  EXPECT_EQ(parse_bounded_int("4096", 1, 4096), 4096);
  EXPECT_EQ(parse_bounded_int("0", 0, 10), 0);
  EXPECT_EQ(parse_bounded_int("-5", -10, 10), -5);
  EXPECT_FALSE(parse_bounded_int("0", 1, 4096).has_value());
  EXPECT_FALSE(parse_bounded_int("4097", 1, 4096).has_value());
  EXPECT_FALSE(parse_bounded_int("-1", 0, 10).has_value());
}

TEST(ParseBoundedInt, RejectsGarbageWithoutSalvaging) {
  // The serving knobs (--clients, --deadline-ms, --queue-depth) go
  // through this: a typo must exit 2 upstream, never become a number.
  EXPECT_FALSE(parse_bounded_int("", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int("ten", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int("4x", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int(" 4", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int("4 ", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int("4.5", 0, 100).has_value());
  EXPECT_FALSE(parse_bounded_int("0x10", 0, 100).has_value());
  // Overflow must not wrap into range.
  EXPECT_FALSE(parse_bounded_int("99999999999999999999", 0, 100).has_value());
}

}  // namespace
}  // namespace reuse::net
