// Parameterised world-generation sweep: the structural invariants must hold
// across the configuration space, not just the default test world.
#include <gtest/gtest.h>

#include <unordered_set>

#include "internet/world.h"

namespace reuse::inet {
namespace {

struct SweepCase {
  const char* name;
  WorldConfig config;
};

WorldConfig base(std::uint64_t seed) {
  WorldConfig config = test_world_config(seed);
  config.as_count = 30;
  return config;
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  {
    SweepCase c{"default", base(1)};
    cases.push_back(c);
  }
  {
    SweepCase c{"no_cgn", base(2)};
    c.config.cgn_as_fraction = 0.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"all_cgn", base(3)};
    c.config.cgn_as_fraction = 1.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"no_dynamic", base(4)};
    c.config.dynamic_as_fraction = 0.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"all_dynamic", base(5)};
    c.config.dynamic_as_fraction = 1.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"bt_everywhere", base(6)};
    c.config.bt_blocked_as_fraction = 0.0;
    c.config.bt_adoption_min = 0.4;
    c.config.bt_adoption_max = 0.6;
    cases.push_back(c);
  }
  {
    SweepCase c{"bt_nowhere", base(7)};
    c.config.bt_blocked_as_fraction = 1.0;
    cases.push_back(c);
  }
  {
    SweepCase c{"dense_households", base(8)};
    c.config.home_nat_extra_member_p = 0.7;
    cases.push_back(c);
  }
  {
    SweepCase c{"sparse_static", base(9)};
    c.config.static_occupancy = 0.1;
    cases.push_back(c);
  }
  {
    SweepCase c{"heavy_infection", base(10)};
    c.config.infection_rate_base = 0.2;
    c.config.infection_rate_p2p = 0.4;
    cases.push_back(c);
  }
  return cases;
}

class WorldSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WorldSweep, StructuralInvariantsHold) {
  const World world(GetParam().config);

  // 1. Every user id resolves, addresses sit in the right role, NAT ground
  //    truth is consistent.
  std::size_t bt = 0;
  for (const User& user : world.users()) {
    bt += user.uses_bittorrent;
    if (user.attachment == AttachmentKind::kDynamic) {
      EXPECT_LT(user.pool_index, world.pools().size());
    } else {
      EXPECT_EQ(world.asn_of(user.fixed_address), user.asn);
    }
  }
  EXPECT_EQ(bt, world.bittorrent_users().size());

  // 2. NAT fan-outs match group membership; carrier groups are >= 2.
  for (const NatGroup& group : world.nat_groups()) {
    EXPECT_EQ(world.users_behind(group.public_address), group.members.size());
    if (group.carrier_grade) {
      EXPECT_GE(group.members.size(), 2u);
    }
  }

  // 3. Prefix roles partition the space: no prefix appears in two ASes.
  std::unordered_set<std::uint32_t> seen_prefixes;
  for (const AsInfo& as_info : world.ases()) {
    for (const net::Ipv4Prefix& prefix : as_info.prefixes) {
      EXPECT_TRUE(seen_prefixes.insert(prefix.network().value()).second)
          << prefix.to_string() << " allocated twice";
    }
  }

  // 4. Pool subscribers never exceed pool capacity.
  for (const DynamicPoolInfo& pool : world.pools()) {
    EXPECT_LE(pool.subscribers.size(), pool.prefixes.size() * 256);
  }

  // 5. Config toggles have the expected gross effect.
  const WorldConfig& config = GetParam().config;
  if (config.dynamic_as_fraction == 0.0) {
    // Only the flagship AS (forced dynamic) may own pools.
    for (const DynamicPoolInfo& pool : world.pools()) {
      EXPECT_EQ(pool.asn, 4134u);
    }
  }
  if (config.bt_blocked_as_fraction >= 1.0) {
    EXPECT_TRUE(world.bittorrent_users().empty());
  }
  if (config.cgn_as_fraction >= 1.0) {
    bool any_carrier = false;
    for (const NatGroup& group : world.nat_groups()) {
      any_carrier |= group.carrier_grade;
    }
    EXPECT_TRUE(any_carrier);
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, WorldSweep, ::testing::ValuesIn(sweep_cases()),
                         [](const ::testing::TestParamInfo<SweepCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace reuse::inet
