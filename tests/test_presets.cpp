#include "analysis/presets.h"

#include <gtest/gtest.h>

#include <set>

#include "analysis/scenario.h"

namespace reuse::analysis {
namespace {

TEST(Presets, RegistryOrderAndLookup) {
  const auto& presets = scenario_presets();
  ASSERT_EQ(presets.size(), 5u);
  EXPECT_STREQ(presets[0].name, "baseline");
  EXPECT_STREQ(presets[1].name, "cgn_dominant");
  EXPECT_STREQ(presets[2].name, "dhcp_churn");
  EXPECT_STREQ(presets[3].name, "static_enterprise");
  EXPECT_STREQ(presets[4].name, "adversarial_evasion");
  for (const ScenarioPreset& preset : presets) {
    EXPECT_EQ(parse_preset(preset.name), &preset);
    EXPECT_NE(preset.summary[0], '\0');
  }
  EXPECT_EQ(parse_preset("nosuch"), nullptr);
  EXPECT_EQ(parse_preset(""), nullptr);
  EXPECT_EQ(parse_preset("Baseline"), nullptr) << "lookup is case-sensitive";
  EXPECT_NE(preset_names().find("adversarial_evasion"), std::string::npos);
}

TEST(Presets, BaselineIsIdentity) {
  const ScenarioConfig base = test_scenario_config(7);
  ScenarioConfig applied = base;
  parse_preset("baseline")->apply(applied);
  EXPECT_EQ(config_fingerprint(applied), config_fingerprint(base));
}

TEST(Presets, TransformsAreDeterministic) {
  for (const ScenarioPreset& preset : scenario_presets()) {
    ScenarioConfig a = test_scenario_config(7);
    ScenarioConfig b = test_scenario_config(7);
    preset.apply(a);
    preset.apply(b);
    EXPECT_EQ(config_fingerprint(a), config_fingerprint(b)) << preset.name;
  }
}

TEST(Presets, FingerprintsArePairwiseDistinct) {
  std::set<std::uint64_t> fingerprints;
  for (const ScenarioPreset& preset : scenario_presets()) {
    ScenarioConfig config = test_scenario_config(7);
    preset.apply(config);
    EXPECT_TRUE(fingerprints.insert(config_fingerprint(config)).second)
        << preset.name << " collides with an earlier preset";
  }
}

// Golden fingerprints over test_scenario_config(7). These pin the preset
// transforms AND the config-fingerprint schema: if this test fails, either
// a preset's knobs changed or a fingerprinted field was added/removed —
// both are calibration events. Re-derive the constants from the failure
// output, update them here, and bump kCalibrationVersion if any DEFAULT
// product changed (a preset-only recalibration does not need the bump:
// preset caches are fingerprint-keyed and simply miss).
TEST(Presets, GoldenFingerprints) {
  const struct {
    const char* name;
    std::uint64_t fingerprint;
  } kGolden[] = {
      {"baseline", 0xc926298fc183e99cULL},
      {"cgn_dominant", 0x9ddcdcead6a94eb4ULL},
      {"dhcp_churn", 0xa0077ccabf637ab0ULL},
      {"static_enterprise", 0x35a73afaf0a40338ULL},
      {"adversarial_evasion", 0xc57ac1f968eba2c6ULL},
  };
  for (const auto& golden : kGolden) {
    const ScenarioPreset* preset = parse_preset(golden.name);
    ASSERT_NE(preset, nullptr) << golden.name;
    ScenarioConfig config = test_scenario_config(7);
    preset->apply(config);
    const std::uint64_t actual = config_fingerprint(config);
    EXPECT_EQ(actual, golden.fingerprint)
        << golden.name << " drifted: actual 0x" << std::hex << actual
        << " — a preset transform or the fingerprint schema changed; "
           "update this golden (and bump kCalibrationVersion if default "
           "products moved)";
  }
}

}  // namespace
}  // namespace reuse::analysis
