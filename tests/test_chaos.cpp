// Chaos suite: scenario runs under seeded fault plans. Three properties
// anchor the whole fault-injection design:
//   1. an empty plan is invisible — byte-identical artifacts to a fault-free
//      run (the injector draws nothing);
//   2. the same (seed, plan) degrades identically on every run;
//   3. the injector's ledger reconciles exactly against the consumers'
//      degradation counters across a sweep of seeds and plans.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/cache.h"
#include "analysis/scenario.h"

namespace reuse::analysis {
namespace {

ScenarioConfig small_config(std::uint64_t seed) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 60;
  config.crawl_days = 1;
  config.fleet.probe_count = 400;
  config.run_census = false;
  return config;
}

ScenarioConfig chaos_config(std::uint64_t seed, std::uint64_t chaos_seed) {
  ScenarioConfig config = small_config(seed);
  config.finalize();
  config.faults = default_chaos_plan(config, chaos_seed);
  // Cap inter-change inference across injected Atlas gaps, as the CLI does.
  config.pipeline.max_change_gap = net::Duration::days(7);
  config.finalize();
  return config;
}

std::string cache_bytes(const Scenario& s) {
  const std::string path =
      std::string("test_chaos_bytes_") + std::to_string(s.config.seed) + "_" +
      std::to_string(s.injector->stats().total()) + ".cache";
  EXPECT_TRUE(save_scenario_cache(path, s.config, s.crawl, s.ecosystem,
                                  s.injector->stats()));
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  std::remove(path.c_str());
  return buffer.str();
}

TEST(ChaosBaseline, EmptyPlanIsByteIdenticalToFaultFreeRun) {
  ScenarioConfig with_empty_plan = small_config(7);
  with_empty_plan.faults.seed = 123;  // a seed alone must change nothing
  with_empty_plan.finalize();
  ScenarioConfig fault_free = small_config(7);
  fault_free.finalize();

  const Scenario a = run_scenario(with_empty_plan);
  const Scenario b = run_scenario(fault_free);

  // No degradation whatsoever...
  EXPECT_FALSE(a.degradation.degraded());
  EXPECT_EQ(a.injector->stats().total(), 0u);
  // ...and the heavy artifacts serialize to the very same bytes (the cache
  // writer is canonical: same products, same file).
  EXPECT_EQ(cache_bytes(a), cache_bytes(b));
  EXPECT_EQ(a.pipeline.dynamic_prefixes.to_vector(),
            b.pipeline.dynamic_prefixes.to_vector());
  EXPECT_EQ(a.crawl.nated, b.crawl.nated);
}

TEST(ChaosDeterminism, SameSeedSamePlanSameDegradation) {
  const ScenarioConfig config = chaos_config(7, 1);
  const Scenario first = run_scenario(config);
  const Scenario second = run_scenario(config);
  EXPECT_TRUE(first.degradation.degraded());
  EXPECT_EQ(first.degradation, second.degradation);
  EXPECT_EQ(first.injector->stats(), second.injector->stats());
  EXPECT_EQ(cache_bytes(first), cache_bytes(second));
}

TEST(ChaosSweep, LedgerReconcilesAcrossSeedsAndPlans) {
  const std::pair<std::uint64_t, std::uint64_t> sweep[] = {
      {7, 1}, {19, 2}, {7, 5}};
  for (const auto& [seed, chaos_seed] : sweep) {
    SCOPED_TRACE("seed " + std::to_string(seed) + " chaos " +
                 std::to_string(chaos_seed));
    const Scenario s = run_scenario(chaos_config(seed, chaos_seed));
    EXPECT_TRUE(s.degradation.degraded());
    const auto failures = s.degradation.reconciliation_failures();
    EXPECT_TRUE(failures.empty())
        << "unreconciled: " << (failures.empty() ? "" : failures.front());
    EXPECT_GT(s.injector->stats().total(), 0u);

    // Per-feed day accounting stays exact under faults.
    for (const blocklist::FeedHealth& health : s.ecosystem.stats.per_list) {
      EXPECT_EQ(health.days_recorded + health.days_missed +
                    health.days_quarantined + health.days_salvaged,
                static_cast<std::int64_t>(s.ecosystem.stats.snapshots_taken));
    }
    // The run still produces the study's artifacts — degraded, not dead.
    EXPECT_GT(s.crawl.evidence.size(), 0u);
    EXPECT_GT(s.ecosystem.store.listing_count(), 0u);
    EXPECT_GT(s.pipeline.probes_total, 0u);
  }
}

class ChaosCache : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("test_chaos_cache_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".cache";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(ChaosCache, HitAndMissAgreeOnDegradation) {
  const ScenarioConfig config = chaos_config(7, 1);
  const CachedScenario miss = run_scenario_cached(config, path_);
  ASSERT_FALSE(miss.cache_hit);
  const CachedScenario hit = run_scenario_cached(config, path_);
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_TRUE(miss.degradation.degraded());
  EXPECT_EQ(miss.degradation, hit.degradation);
  EXPECT_TRUE(hit.degradation.reconciles());
}

TEST_F(ChaosCache, FaultPlanIsPartOfTheFingerprint) {
  // A cache produced under one plan must never serve a different plan (or a
  // fault-free run): the plan feeds the config fingerprint.
  const ScenarioConfig chaotic = chaos_config(7, 1);
  const CachedScenario miss = run_scenario_cached(chaotic, path_);
  ASSERT_FALSE(miss.cache_hit);

  ScenarioConfig clean = small_config(7);
  clean.finalize();
  EXPECT_NE(config_fingerprint(chaotic), config_fingerprint(clean));
  const CachedScenario clean_run = run_scenario_cached(clean, path_);
  EXPECT_FALSE(clean_run.cache_hit);
  EXPECT_FALSE(clean_run.degradation.degraded());
}

}  // namespace
}  // namespace reuse::analysis
