// The incremental pipeline's two contracts (DESIGN § incremental pipeline):
//
//  1. Resume is byte-identical: evolving a cached N-day scenario +K days
//     must produce the same products fingerprint as simulating N+K days
//     from scratch — across worker counts, under chaos, and when chained
//     (N -> N+K -> N+2K). A fast-but-divergent resume would silently skew
//     every figure derived from the evolved run, so equivalence is tested
//     on the same fingerprint CI cross-checks.
//
//  2. Deltas are exact or rejected: a snapshot delta applies onto exactly
//     the base it was diffed from (reproducing the full rebuild bit for
//     bit) and cleanly refuses any other base — including through
//     LookupServer::reload, which must keep the last-good snapshot
//     serving when handed a mismatched or corrupt delta.
//
// The IncrementalDelta.DeltaApplyDuringQuery case doubles as the TSan
// target for delta publication racing live queries (see ci.yml).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "analysis/cache.h"
#include "analysis/scenario.h"
#include "serve/client.h"
#include "serve/server.h"
#include "serve/snapshot.h"

namespace reuse {
namespace {

// ---------------------------------------------------------------------------
// Scenario-level resume equivalence

analysis::ScenarioConfig incremental_config(std::uint64_t seed, int base_days,
                                            int extra_days, int jobs = 1,
                                            bool chaos = false) {
  analysis::ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 30;
  config.crawl_days = 1;
  config.fleet.probe_count = 100;
  config.run_census = false;
  config.jobs = jobs;
  // One collection period ending at `base_days`, with the abuse horizon
  // declared past it — the precondition for a prefix-stable event stream
  // (and exactly what reuse_study --resume-days sets up).
  config.ecosystem.periods = {net::TimeWindow{
      net::SimTime(0),
      net::SimTime(static_cast<std::int64_t>(base_days) * 86400)}};
  config.horizon_days = base_days + extra_days;
  if (chaos) {
    config.faults = analysis::default_chaos_plan(config, /*chaos_seed=*/3);
    config.pipeline.max_change_gap = net::Duration::days(7);
  }
  config.finalize();
  return config;
}

template <typename ScenarioLike>
std::uint64_t fingerprint_of(const ScenarioLike& s) {
  return analysis::products_fingerprint(s.crawl, s.ecosystem, s.fleet,
                                        s.pipeline, s.census);
}

TEST(Incremental, ResumeIsByteIdenticalToFreshRunAcrossJobs) {
  constexpr int kBaseDays = 24;
  constexpr int kExtraDays = 6;
  std::uint64_t expected = 0;
  for (const int jobs : {1, 8}) {
    const auto config = incremental_config(9, kBaseDays, kExtraDays, jobs);
    const std::string tag = "_j" + std::to_string(jobs);
    const std::string base_path = "test_incremental_base" + tag + ".cache";
    const std::string ext_path = "test_incremental_ext" + tag + ".cache";
    std::remove(base_path.c_str());
    std::remove(ext_path.c_str());

    ASSERT_FALSE(analysis::run_scenario_cached(config, base_path).cache_hit);
    const auto extended = analysis::extend_scenario_days(config, kExtraDays);
    const analysis::Scenario fresh = analysis::run_scenario(extended);
    const analysis::EvolvedScenario evolved = analysis::evolve_scenario_cached(
        config, kExtraDays, base_path, ext_path);
    ASSERT_EQ(evolved.path, analysis::EvolvePath::kResumed)
        << "jobs " << jobs;
    EXPECT_EQ(fingerprint_of(evolved.scenario), fingerprint_of(fresh))
        << "jobs " << jobs;

    // Determinism across worker counts: every rung agrees on the bytes.
    if (expected == 0) expected = fingerprint_of(fresh);
    EXPECT_EQ(fingerprint_of(fresh), expected) << "jobs " << jobs;

    // The evolve saved the extended run, so a later load is a plain hit.
    EXPECT_TRUE(analysis::run_scenario_cached(extended, ext_path).cache_hit);
    std::remove(base_path.c_str());
    std::remove(ext_path.c_str());
  }
}

TEST(Incremental, ResumeIsByteIdenticalUnderChaos) {
  constexpr int kBaseDays = 24;
  constexpr int kExtraDays = 6;
  for (const int jobs : {1, 8}) {
    const auto config =
        incremental_config(9, kBaseDays, kExtraDays, jobs, /*chaos=*/true);
    const std::string tag = "_chaos_j" + std::to_string(jobs);
    const std::string base_path = "test_incremental_base" + tag + ".cache";
    const std::string ext_path = "test_incremental_ext" + tag + ".cache";
    std::remove(base_path.c_str());
    std::remove(ext_path.c_str());

    ASSERT_FALSE(analysis::run_scenario_cached(config, base_path).cache_hit);
    const auto extended = analysis::extend_scenario_days(config, kExtraDays);
    const analysis::Scenario fresh = analysis::run_scenario(extended);
    const analysis::EvolvedScenario evolved = analysis::evolve_scenario_cached(
        config, kExtraDays, base_path, ext_path);
    ASSERT_EQ(evolved.path, analysis::EvolvePath::kResumed)
        << "jobs " << jobs;
    EXPECT_EQ(fingerprint_of(evolved.scenario), fingerprint_of(fresh))
        << "jobs " << jobs;
    // The composed fault ledger must still reconcile against the products.
    EXPECT_TRUE(evolved.scenario.degradation.reconciles()) << "jobs " << jobs;
    std::remove(base_path.c_str());
    std::remove(ext_path.c_str());
  }
}

TEST(Incremental, ChainedResumesMatchOneFreshRun) {
  constexpr int kBaseDays = 20;
  constexpr int kStepDays = 4;
  // Horizon covers BOTH steps up front, so N -> N+K -> N+2K all share one
  // event stream.
  const auto config = incremental_config(9, kBaseDays, 2 * kStepDays);
  const std::string base_path = "test_incremental_chain_base.cache";
  const std::string mid_path = "test_incremental_chain_mid.cache";
  const std::string end_path = "test_incremental_chain_end.cache";
  std::remove(base_path.c_str());
  std::remove(mid_path.c_str());
  std::remove(end_path.c_str());

  ASSERT_FALSE(analysis::run_scenario_cached(config, base_path).cache_hit);
  const analysis::EvolvedScenario mid = analysis::evolve_scenario_cached(
      config, kStepDays, base_path, mid_path);
  ASSERT_EQ(mid.path, analysis::EvolvePath::kResumed);
  const auto mid_config = analysis::extend_scenario_days(config, kStepDays);
  const analysis::EvolvedScenario end = analysis::evolve_scenario_cached(
      mid_config, kStepDays, mid_path, end_path);
  ASSERT_EQ(end.path, analysis::EvolvePath::kResumed);

  const auto full_config =
      analysis::extend_scenario_days(config, 2 * kStepDays);
  const analysis::Scenario fresh = analysis::run_scenario(full_config);
  EXPECT_EQ(fingerprint_of(end.scenario), fingerprint_of(fresh));

  std::remove(base_path.c_str());
  std::remove(mid_path.c_str());
  std::remove(end_path.c_str());
}

TEST(Incremental, HorizonTooShortFallsBackToFreshRun) {
  auto config = incremental_config(9, 20, 4);
  // Auto horizon resolves to the period end, so extending the period moves
  // the horizon and the base stream is no longer a prefix: evolve must
  // refuse to resume rather than diverge.
  config.horizon_days = 0;
  const std::string base_path = "test_incremental_short_base.cache";
  const std::string ext_path = "test_incremental_short_ext.cache";
  std::remove(base_path.c_str());
  std::remove(ext_path.c_str());

  ASSERT_FALSE(analysis::run_scenario_cached(config, base_path).cache_hit);
  const analysis::EvolvedScenario evolved =
      analysis::evolve_scenario_cached(config, 4, base_path, ext_path);
  EXPECT_EQ(evolved.path, analysis::EvolvePath::kFreshRun);

  std::remove(base_path.c_str());
  std::remove(ext_path.c_str());
}

// ---------------------------------------------------------------------------
// Snapshot deltas

serve::CompiledSnapshot build_snapshot(
    const blocklist::SnapshotStore& store,
    const std::unordered_set<net::Ipv4Address>& nated,
    const net::PrefixSet& dynamic) {
  return serve::SnapshotBuilder()
      .with_store(store)
      .with_nated(nated)
      .with_dynamic(dynamic)
      .build();
}

net::Ipv4Address addr(const char* text) {
  return *net::Ipv4Address::parse(text);
}

/// Base and evolved serve-side worlds: entries added, removed, re-worded,
/// and a dynamic pool appearing — every delta record kind exercised.
struct DeltaFixture {
  blocklist::SnapshotStore base_store, next_store;
  std::unordered_set<net::Ipv4Address> nated;
  net::PrefixSet base_dynamic, next_dynamic;

  DeltaFixture() {
    base_store.record(1, addr("1.0.0.1"), 0);
    base_store.record(1, addr("2.0.0.1"), 0);
    base_store.record(2, addr("3.0.0.1"), 0);
    // Evolved: 3.0.0.1 delisted, 4.0.0.4 appears, 2.0.0.1 gains a list
    // (re-worded verdict), and 5.0.0.0/24 becomes a dynamic pool.
    next_store.record(1, addr("1.0.0.1"), 0);
    next_store.record(1, addr("2.0.0.1"), 0);
    next_store.record(2, addr("2.0.0.1"), 1);
    next_store.record(2, addr("4.0.0.4"), 1);
    nated.insert(addr("2.0.0.1"));
    next_dynamic.insert(*net::Ipv4Prefix::parse("5.0.0.0/24"));
  }

  [[nodiscard]] serve::CompiledSnapshot base() const {
    return build_snapshot(base_store, nated, base_dynamic);
  }
  [[nodiscard]] serve::CompiledSnapshot next() const {
    return build_snapshot(next_store, nated, next_dynamic);
  }
};

TEST(IncrementalDelta, ApplyReproducesFullRebuildByteForByte) {
  const DeltaFixture fx;
  const serve::CompiledSnapshot base = fx.base();
  const serve::CompiledSnapshot next = fx.next();
  const serve::SnapshotDelta delta = serve::SnapshotBuilder::diff(base, next);
  EXPECT_FALSE(delta.empty());
  EXPECT_EQ(delta.base_fingerprint(), base.fingerprint());
  EXPECT_EQ(delta.target_fingerprint(), next.fingerprint());

  std::string error;
  const auto applied = delta.apply(base, &error);
  ASSERT_TRUE(applied.has_value()) << error;
  EXPECT_EQ(applied->fingerprint(), next.fingerprint());
  EXPECT_TRUE(applied->verdict(addr("4.0.0.4")).listed());
  EXPECT_FALSE(applied->verdict(addr("3.0.0.1")).listed());
  EXPECT_TRUE(applied->verdict(addr("5.0.0.7")).dynamic());

  // Self-diff is empty and applies to itself.
  const serve::SnapshotDelta none = serve::SnapshotBuilder::diff(base, base);
  EXPECT_TRUE(none.empty());
  const auto same = none.apply(base, &error);
  ASSERT_TRUE(same.has_value()) << error;
  EXPECT_EQ(same->fingerprint(), base.fingerprint());
}

TEST(IncrementalDelta, SurvivesDiskRoundTripAndRejectsCorruption) {
  const DeltaFixture fx;
  const serve::CompiledSnapshot base = fx.base();
  const serve::CompiledSnapshot next = fx.next();
  const serve::SnapshotDelta delta = serve::SnapshotBuilder::diff(base, next);
  const std::string path = "test_incremental_delta_roundtrip.bin";
  ASSERT_TRUE(delta.save(path));
  EXPECT_EQ(serve::file_magic(path), serve::kSnapshotDeltaMagic);

  std::string error;
  const auto loaded = serve::SnapshotDelta::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  const auto applied = loaded->apply(base, &error);
  ASSERT_TRUE(applied.has_value()) << error;
  EXPECT_EQ(applied->fingerprint(), next.fingerprint());

  // A compiled snapshot is not a delta (and vice versa): magic rejects it.
  const std::string snap_path = "test_incremental_delta_notadelta.bin";
  ASSERT_TRUE(base.save(snap_path));
  EXPECT_FALSE(serve::SnapshotDelta::load(snap_path, &error).has_value());
  EXPECT_NE(error.find("not a snapshot delta"), std::string::npos) << error;

  // A mid-write torso rejects with a distinct diagnostic, never applies.
  {
    std::FILE* in = std::fopen(path.c_str(), "rb");
    ASSERT_NE(in, nullptr);
    std::string bytes(1 << 16, '\0');
    bytes.resize(std::fread(bytes.data(), 1, bytes.size(), in));
    std::fclose(in);
    std::FILE* out = std::fopen(path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    std::fwrite(bytes.data(), 1, bytes.size() / 2, out);
    std::fclose(out);
  }
  EXPECT_FALSE(serve::SnapshotDelta::load(path, &error).has_value());
  EXPECT_NE(error.find("delta load failed"), std::string::npos) << error;

  std::remove(path.c_str());
  std::remove(snap_path.c_str());
}

TEST(IncrementalDelta, RefusesAnyBaseButItsOwn) {
  const DeltaFixture fx;
  const serve::CompiledSnapshot base = fx.base();
  const serve::CompiledSnapshot next = fx.next();
  const serve::SnapshotDelta delta = serve::SnapshotBuilder::diff(base, next);

  std::string error;
  // Applying onto the TARGET (the classic double-apply mistake) fails.
  EXPECT_FALSE(delta.apply(next, &error).has_value());
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos) << error;

  // Applying onto an unrelated snapshot fails identically.
  blocklist::SnapshotStore other_store;
  other_store.record(1, addr("8.8.8.8"), 0);
  const serve::CompiledSnapshot other =
      serve::SnapshotBuilder().with_store(other_store).build();
  EXPECT_FALSE(delta.apply(other, &error).has_value());
}

// ---------------------------------------------------------------------------
// lookupd applying deltas in place

serve::ServerConfig calm_server_config(int workers = 1) {
  serve::ServerConfig config;
  config.workers = workers;
  config.max_queue = 64;
  config.deadline_ms = 10'000;
  config.stall_timeout_ms = 10'000;
  return config;
}

TEST(IncrementalDelta, ServerAppliesDeltaInPlaceAndKeepsLastGoodOnMismatch) {
  const DeltaFixture fx;
  const auto base =
      std::make_shared<const serve::CompiledSnapshot>(fx.base());
  const serve::CompiledSnapshot next = fx.next();
  const std::string delta_path = "test_incremental_server_delta.bin";
  ASSERT_TRUE(serve::SnapshotBuilder::diff(*base, next).save(delta_path));

  serve::LookupEngine engine;
  engine.publish(base);
  serve::LookupServer server(engine, calm_server_config());
  std::string error;
  EXPECT_TRUE(server.reload(delta_path, &error)) << error;
  EXPECT_EQ(server.reloads(), 1u);
  EXPECT_EQ(server.reload_failures(), 0u);
  // The delta-applied snapshot is live: evolved verdicts serve immediately.
  EXPECT_TRUE(engine.verdict(addr("4.0.0.4")).listed());
  EXPECT_FALSE(engine.verdict(addr("3.0.0.1")).listed());

  // Re-applying the same delta must fail cleanly (the live base moved on)
  // and leave the last-good snapshot serving.
  EXPECT_FALSE(server.reload(delta_path, &error));
  EXPECT_NE(error.find("fingerprint mismatch"), std::string::npos) << error;
  EXPECT_EQ(server.reloads(), 1u);
  EXPECT_EQ(server.reload_failures(), 1u);
  EXPECT_TRUE(engine.verdict(addr("4.0.0.4")).listed());
  server.drain();

  // A server with no live snapshot has nothing to apply a delta to.
  serve::LookupEngine cold;
  serve::LookupServer cold_server(cold, calm_server_config());
  EXPECT_FALSE(cold_server.reload(delta_path, &error));
  EXPECT_NE(error.find("no live snapshot"), std::string::npos) << error;
  cold_server.drain();

  std::remove(delta_path.c_str());
}

// The TSan target: delta publication racing live queries through the epoch
// domain. Forward and reverse deltas toggle the live snapshot while client
// threads hammer the server; every response must decode, and the ledger
// must reconcile exactly when the dust settles.
TEST(IncrementalDelta, DeltaApplyDuringQueryKeepsLedgerExact) {
  const DeltaFixture fx;
  const auto base =
      std::make_shared<const serve::CompiledSnapshot>(fx.base());
  const serve::CompiledSnapshot next = fx.next();
  const std::string fwd_path = "test_incremental_delta_fwd.bin";
  const std::string rev_path = "test_incremental_delta_rev.bin";
  ASSERT_TRUE(serve::SnapshotBuilder::diff(*base, next).save(fwd_path));
  ASSERT_TRUE(serve::SnapshotBuilder::diff(next, *base).save(rev_path));

  serve::LookupEngine engine;
  engine.publish(base);
  serve::LookupServer server(engine, calm_server_config(/*workers=*/2));

  constexpr int kClients = 2;
  constexpr std::uint64_t kBatches = 200;
  const std::vector<std::uint32_t> queries{
      addr("1.0.0.1").value(), addr("2.0.0.1").value(),
      addr("3.0.0.1").value(), addr("4.0.0.4").value(),
      addr("5.0.0.7").value()};
  std::vector<int> fds;
  for (int c = 0; c < kClients; ++c) fds.push_back(server.connect_client());
  std::vector<std::thread> clients;
  std::vector<std::uint64_t> ok_counts(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([fd = fds[c], &queries, &ok_counts, c] {
      serve::LookupClient client(fd);
      ASSERT_TRUE(client.valid());
      for (std::uint64_t b = 0; b < kBatches; ++b) {
        ASSERT_TRUE(client.send_batch(b, queries));
        const auto response = client.read_response();
        ASSERT_TRUE(response.has_value());
        ASSERT_EQ(response->verdicts.size(), queries.size());
        // Either snapshot may answer mid-toggle, but 1.0.0.1 is listed in
        // both worlds — a constant the race cannot disturb.
        EXPECT_NE(response->verdicts[0] & serve::kVerdictListed, 0u);
        if (response->status == serve::ResponseStatus::kOk) ++ok_counts[c];
      }
      client.shutdown_write();
    });
  }

  // Toggle base -> next -> base ... serially from this thread; each delta
  // applies onto exactly the snapshot the previous reload published, so
  // every reload must succeed no matter how the queries interleave.
  constexpr int kToggles = 40;
  std::string error;
  for (int t = 0; t < kToggles; ++t) {
    const std::string& path = (t % 2 == 0) ? fwd_path : rev_path;
    ASSERT_TRUE(server.reload(path, &error)) << "toggle " << t << ": " << error;
  }

  for (std::thread& thread : clients) thread.join();
  server.drain();
  const serve::ServerStats stats = server.stats();
  EXPECT_TRUE(stats.reconciles());
  std::uint64_t ok_total = 0;
  for (const std::uint64_t count : ok_counts) ok_total += count;
  EXPECT_EQ(stats.served, ok_total);
  EXPECT_EQ(stats.submitted_valid,
            static_cast<std::uint64_t>(kClients) * kBatches);
  EXPECT_EQ(server.reloads(), static_cast<std::uint64_t>(kToggles));
  EXPECT_EQ(server.reload_failures(), 0u);

  std::remove(fwd_path.c_str());
  std::remove(rev_path.c_str());
}

}  // namespace
}  // namespace reuse
