#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "analysis/cache.h"
#include "netbase/serialize.h"

namespace reuse {
namespace {

TEST(BinarySerialize, IntegerRoundTripAllWidths) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint8_t{0xAB});
  writer.write(std::uint16_t{0xBEEF});
  writer.write(std::uint32_t{0xDEADBEEF});
  writer.write(std::uint64_t{0x0123456789ABCDEFULL});
  writer.write(std::int64_t{-42});
  writer.write(3.14159);
  writer.write(std::string("hello"));
  ASSERT_TRUE(writer.ok());

  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read<std::uint8_t>(), 0xAB);
  EXPECT_EQ(reader.read<std::uint16_t>(), 0xBEEF);
  EXPECT_EQ(reader.read<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read<std::uint64_t>(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.read<std::int64_t>(), -42);
  EXPECT_DOUBLE_EQ(reader.read_double(), 3.14159);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.ok());
}

TEST(BinarySerialize, WriteSequenceRoundTrips) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  const std::vector<std::uint32_t> values{3, 1, 4, 1, 5, 9, 2, 6};
  writer.write_sequence(values, [](net::BinaryWriter& w, std::uint32_t v) {
    w.write(v);
  });
  net::BinaryReader reader(stream);
  const auto count = reader.read_size(1 << 10);
  ASSERT_EQ(count, values.size());
  for (const std::uint32_t expected : values) {
    EXPECT_EQ(reader.read<std::uint32_t>(), expected);
  }
  EXPECT_TRUE(reader.ok());
}

TEST(BinarySerialize, OversizedStringIsRejected) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint64_t{1ULL << 40});  // bogus string length
  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(BinarySerialize, CorruptLengthPoisonsStream) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint64_t{1ULL << 60});  // absurd length prefix
  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read_size(1 << 20), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BinarySerialize, TruncatedStreamFailsCleanly) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint32_t{7});
  net::BinaryReader reader(stream);
  (void)reader.read<std::uint32_t>();
  (void)reader.read<std::uint64_t>();  // past the end
  EXPECT_FALSE(reader.ok());
}

class CacheRoundTrip : public ::testing::Test {
 protected:
  static analysis::ScenarioConfig tiny_config() {
    analysis::ScenarioConfig config;
    config.seed = 5;
    config.world = inet::test_world_config(5);
    config.world.as_count = 30;
    config.crawl_days = 1;
    config.fleet.probe_count = 100;
    config.run_census = false;
    config.finalize();
    return config;
  }
  void SetUp() override {
    // Unique file per test: ctest runs cases in parallel processes.
    path_ = std::string("test_cache_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".cache";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CacheRoundTrip, SaveThenLoadPreservesEverything) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  const auto loaded = analysis::load_scenario_cache(path_, config);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->crawl.evidence.size(), original.crawl.evidence.size());
  EXPECT_EQ(loaded->crawl.nated, original.crawl.nated);
  EXPECT_EQ(loaded->crawl.stats.pings_sent, original.crawl.stats.pings_sent);
  EXPECT_EQ(loaded->crawl.distinct_node_ids, original.crawl.distinct_node_ids);
  for (const auto& [address, evidence] : original.crawl.evidence) {
    const auto it = loaded->crawl.evidence.find(address);
    ASSERT_NE(it, loaded->crawl.evidence.end());
    EXPECT_EQ(it->second.ports, evidence.ports);
    EXPECT_EQ(it->second.max_concurrent_users, evidence.max_concurrent_users);
  }

  EXPECT_EQ(loaded->ecosystem.store.listing_count(),
            original.ecosystem.store.listing_count());
  EXPECT_EQ(loaded->ecosystem.store.addresses().size(),
            original.ecosystem.store.addresses().size());
  original.ecosystem.store.for_each_listing(
      [&](blocklist::ListId list, net::Ipv4Address address,
          const net::IntervalSet& intervals) {
        const net::IntervalSet* other =
            loaded->ecosystem.store.presence(list, address);
        ASSERT_NE(other, nullptr);
        EXPECT_EQ(other->intervals(), intervals.intervals());
      });
}

TEST_F(CacheRoundTrip, MismatchedConfigIsRejected) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  auto other_seed = config;
  other_seed.seed = 6;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_seed).has_value());
  auto other_scale = config;
  other_scale.world.as_count = 31;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_scale).has_value());
  EXPECT_FALSE(
      analysis::load_scenario_cache("nonexistent.cache", config).has_value());
}

TEST_F(CacheRoundTrip, RunScenarioCachedHitsOnSecondCall) {
  const auto config = tiny_config();
  const analysis::CachedScenario first =
      analysis::run_scenario_cached(config, path_);
  EXPECT_FALSE(first.cache_hit);
  const analysis::CachedScenario second =
      analysis::run_scenario_cached(config, path_);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.crawl.nated, second.crawl.nated);
  EXPECT_EQ(first.ecosystem.store.listing_count(),
            second.ecosystem.store.listing_count());
  EXPECT_EQ(first.pipeline.probes_daily, second.pipeline.probes_daily);
}

TEST_F(CacheRoundTrip, GarbageFileIsRejected) {
  {
    std::ofstream os(path_, std::ios::binary);
    os << "this is not a cache file at all, just text";
  }
  EXPECT_FALSE(
      analysis::load_scenario_cache(path_, tiny_config()).has_value());
}

}  // namespace
}  // namespace reuse
