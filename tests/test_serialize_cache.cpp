#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analysis/cache.h"
#include "netbase/serialize.h"

namespace reuse {
namespace {

TEST(BinarySerialize, IntegerRoundTripAllWidths) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint8_t{0xAB});
  writer.write(std::uint16_t{0xBEEF});
  writer.write(std::uint32_t{0xDEADBEEF});
  writer.write(std::uint64_t{0x0123456789ABCDEFULL});
  writer.write(std::int64_t{-42});
  writer.write(3.14159);
  writer.write(std::string("hello"));
  ASSERT_TRUE(writer.ok());

  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read<std::uint8_t>(), 0xAB);
  EXPECT_EQ(reader.read<std::uint16_t>(), 0xBEEF);
  EXPECT_EQ(reader.read<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(reader.read<std::uint64_t>(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.read<std::int64_t>(), -42);
  EXPECT_DOUBLE_EQ(reader.read_double(), 3.14159);
  EXPECT_EQ(reader.read_string(), "hello");
  EXPECT_TRUE(reader.ok());
}

TEST(BinarySerialize, WriteSequenceRoundTrips) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  const std::vector<std::uint32_t> values{3, 1, 4, 1, 5, 9, 2, 6};
  writer.write_sequence(values, [](net::BinaryWriter& w, std::uint32_t v) {
    w.write(v);
  });
  net::BinaryReader reader(stream);
  const auto count = reader.read_size(1 << 10);
  ASSERT_EQ(count, values.size());
  for (const std::uint32_t expected : values) {
    EXPECT_EQ(reader.read<std::uint32_t>(), expected);
  }
  EXPECT_TRUE(reader.ok());
}

TEST(BinarySerialize, OversizedStringIsRejected) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint64_t{1ULL << 40});  // bogus string length
  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read_string(), "");
  EXPECT_FALSE(reader.ok());
}

TEST(BinarySerialize, CorruptLengthPoisonsStream) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint64_t{1ULL << 60});  // absurd length prefix
  net::BinaryReader reader(stream);
  EXPECT_EQ(reader.read_size(1 << 20), 0u);
  EXPECT_FALSE(reader.ok());
}

TEST(BinarySerialize, TruncatedStreamFailsCleanly) {
  std::stringstream stream;
  net::BinaryWriter writer(stream);
  writer.write(std::uint32_t{7});
  net::BinaryReader reader(stream);
  (void)reader.read<std::uint32_t>();
  (void)reader.read<std::uint64_t>();  // past the end
  EXPECT_FALSE(reader.ok());
}

class CacheRoundTrip : public ::testing::Test {
 protected:
  static analysis::ScenarioConfig tiny_config() {
    analysis::ScenarioConfig config;
    config.seed = 5;
    config.world = inet::test_world_config(5);
    config.world.as_count = 30;
    config.crawl_days = 1;
    config.fleet.probe_count = 100;
    config.run_census = false;
    config.finalize();
    return config;
  }
  void SetUp() override {
    // Unique file per test: ctest runs cases in parallel processes.
    path_ = std::string("test_cache_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".cache";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CacheRoundTrip, SaveThenLoadPreservesEverything) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  const auto loaded = analysis::load_scenario_cache(path_, config);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->crawl.evidence.size(), original.crawl.evidence.size());
  EXPECT_EQ(loaded->crawl.nated, original.crawl.nated);
  EXPECT_EQ(loaded->crawl.stats.pings_sent, original.crawl.stats.pings_sent);
  EXPECT_EQ(loaded->crawl.distinct_node_ids, original.crawl.distinct_node_ids);
  for (const auto& [address, evidence] : original.crawl.evidence) {
    const auto it = loaded->crawl.evidence.find(address);
    ASSERT_NE(it, loaded->crawl.evidence.end());
    EXPECT_EQ(it->second.ports, evidence.ports);
    EXPECT_EQ(it->second.max_concurrent_users, evidence.max_concurrent_users);
  }

  EXPECT_EQ(loaded->ecosystem.store.listing_count(),
            original.ecosystem.store.listing_count());
  EXPECT_EQ(loaded->ecosystem.store.address_count(),
            original.ecosystem.store.address_count());
  original.ecosystem.store.for_each_listing(
      [&](blocklist::ListId list, net::Ipv4Address address,
          const net::IntervalSet& intervals) {
        const net::IntervalSet other =
            loaded->ecosystem.store.presence(list, address);
        ASSERT_FALSE(other.empty());
        EXPECT_EQ(other.intervals(), intervals.intervals());
      });
}

TEST_F(CacheRoundTrip, MismatchedConfigIsRejected) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  auto other_seed = config;
  other_seed.seed = 6;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_seed).has_value());
  auto other_scale = config;
  other_scale.world.as_count = 31;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_scale).has_value());
  EXPECT_FALSE(
      analysis::load_scenario_cache("nonexistent.cache", config).has_value());
}

TEST_F(CacheRoundTrip, RunScenarioCachedHitsOnSecondCall) {
  const auto config = tiny_config();
  const analysis::CachedScenario first =
      analysis::run_scenario_cached(config, path_);
  EXPECT_FALSE(first.cache_hit);
  const analysis::CachedScenario second =
      analysis::run_scenario_cached(config, path_);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(first.crawl.nated, second.crawl.nated);
  EXPECT_EQ(first.ecosystem.store.listing_count(),
            second.ecosystem.store.listing_count());
  EXPECT_EQ(first.pipeline.probes_daily, second.pipeline.probes_daily);
}

TEST_F(CacheRoundTrip, FeedHealthPerListSurvivesTheRoundTrip) {
  // Under a chaos plan the per-list health vector carries the interesting
  // fields: quarantined/salvaged days and per-list skipped-line counts.
  // All of it must survive the cache, and the per-list skip counts must
  // keep summing to the aggregate on both sides of the round trip.
  auto config = tiny_config();
  config.faults = analysis::default_chaos_plan(config, /*chaos_seed=*/1);
  config.finalize();
  const analysis::Scenario original = analysis::run_scenario(config);
  const blocklist::EcosystemStats& stats = original.ecosystem.stats;
  EXPECT_GT(stats.feeds_quarantined + stats.feeds_salvaged, 0u);
  std::uint64_t per_list_skipped = 0;
  for (const blocklist::FeedHealth& health : stats.per_list) {
    per_list_skipped += health.lines_skipped;
  }
  EXPECT_EQ(per_list_skipped, stats.feed_lines_skipped);
  EXPECT_GT(stats.feed_lines_skipped, 0u);

  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  const auto loaded = analysis::load_scenario_cache(path_, config);
  ASSERT_TRUE(loaded.has_value());
  const blocklist::EcosystemStats& reloaded = loaded->ecosystem.stats;
  EXPECT_EQ(reloaded.per_list, stats.per_list);
  EXPECT_EQ(reloaded.feed_lines_skipped, stats.feed_lines_skipped);
  EXPECT_EQ(reloaded.feeds_quarantined, stats.feeds_quarantined);
  EXPECT_EQ(reloaded.feeds_salvaged, stats.feeds_salvaged);
  std::uint64_t reloaded_skipped = 0;
  for (const blocklist::FeedHealth& health : reloaded.per_list) {
    reloaded_skipped += health.lines_skipped;
  }
  EXPECT_EQ(reloaded_skipped, reloaded.feed_lines_skipped);
}

TEST_F(CacheRoundTrip, GarbageFileIsRejected) {
  {
    std::ofstream os(path_, std::ios::binary);
    os << "this is not a cache file at all, just text";
  }
  EXPECT_FALSE(
      analysis::load_scenario_cache(path_, tiny_config()).has_value());
}

TEST_F(CacheRoundTrip, NatedOrderingMatchesLiveScenario) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  const auto loaded = analysis::load_scenario_cache(path_, config);
  ASSERT_TRUE(loaded.has_value());
  // Exact sequence equality, not just set equality: benches iterate
  // `nated` in order, so cache-hit runs must replay the live ordering.
  ASSERT_FALSE(original.crawl.nated.empty());
  EXPECT_EQ(loaded->crawl.nated, original.crawl.nated);
  EXPECT_EQ(loaded->crawl.nated_set, original.crawl.nated_set);
}

TEST_F(CacheRoundTrip, SavedBytesAreDeterministic) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  const std::string second_path = path_ + ".second";
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  ASSERT_TRUE(analysis::save_scenario_cache(second_path, config,
                                            original.crawl,
                                            original.ecosystem));
  const auto read_all = [](const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(is), {});
  };
  const std::string first_bytes = read_all(path_);
  EXPECT_FALSE(first_bytes.empty());
  EXPECT_EQ(first_bytes, read_all(second_path));
  std::remove(second_path.c_str());
}

TEST_F(CacheRoundTrip, ConfigsDifferingInUnkeyedKnobsAreRejected) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  // Each of these knobs changes the simulated crawl or ecosystem but was
  // invisible to the pre-fingerprint header check.
  auto other_crawl = config;
  other_crawl.crawl.get_nodes_per_endpoint += 1;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_crawl).has_value());
  auto other_dht = config;
  other_dht.dht.reboot_rate_per_day += 0.01;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_dht).has_value());
  auto other_eco = config;
  other_eco.ecosystem.reobservation_extend_rate += 0.01;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_eco).has_value());
  auto other_world = config;
  other_world.world.infection_rate_base += 0.001;
  EXPECT_FALSE(analysis::load_scenario_cache(path_, other_world).has_value());
  auto other_restrict = config;
  other_restrict.restrict_crawler_to_blocklisted =
      !config.restrict_crawler_to_blocklisted;
  EXPECT_FALSE(
      analysis::load_scenario_cache(path_, other_restrict).has_value());
}

TEST_F(CacheRoundTrip, DistinctConfigsGetDistinctDefaultPaths) {
  const auto config = tiny_config();
  auto other = config;
  other.ecosystem.short_retention_fraction += 0.05;
  EXPECT_NE(analysis::config_fingerprint(config),
            analysis::config_fingerprint(other));
  EXPECT_NE(analysis::default_cache_path(config),
            analysis::default_cache_path(other));
  // Same config, fingerprinted before or after finalize(): same value (the
  // fingerprint finalizes a copy internally).
  analysis::ScenarioConfig unfinalized;
  unfinalized.seed = config.seed;
  unfinalized.world = config.world;
  unfinalized.crawl_days = config.crawl_days;
  unfinalized.fleet.probe_count = config.fleet.probe_count;
  unfinalized.census = config.census;
  unfinalized.run_census = config.run_census;
  EXPECT_EQ(analysis::config_fingerprint(config),
            analysis::config_fingerprint(unfinalized));
}

TEST_F(CacheRoundTrip, TruncatedFilesAreRejectedFast) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  std::string bytes;
  {
    std::ifstream is(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  // Cut inside the header, just after it, mid-payload, and one byte short —
  // the loader must reject each without looping over a corrupt count.
  for (const std::size_t keep :
       {std::size_t{10}, std::size_t{63}, std::size_t{64},
        bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(keep));
    os.close();
    EXPECT_FALSE(analysis::load_scenario_cache(path_, config).has_value())
        << "truncation at " << keep << " bytes was not rejected";
  }
}

TEST_F(CacheRoundTrip, BitFlippedFilesAreRejected) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  std::string bytes;
  {
    std::ifstream is(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(is), {});
  }
  ASSERT_GT(bytes.size(), 64u);
  // Every header byte, then a sample of payload offsets. The payload
  // checksum must catch every single-bit flip.
  std::vector<std::size_t> offsets;
  for (std::size_t i = 0; i < 64; ++i) offsets.push_back(i);
  for (std::size_t i = 64; i < bytes.size(); i += 131) offsets.push_back(i);
  offsets.push_back(bytes.size() - 1);
  for (const std::size_t offset : offsets) {
    std::string corrupt = bytes;
    corrupt[offset] = static_cast<char>(corrupt[offset] ^ 0x40);
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
    os.close();
    EXPECT_FALSE(analysis::load_scenario_cache(path_, config).has_value())
        << "bit flip at offset " << offset << " was not rejected";
  }
}

TEST_F(CacheRoundTrip, SaveIsAtomicAgainstStaleTmpAndRereadable) {
  const auto config = tiny_config();
  const analysis::Scenario original = analysis::run_scenario(config);
  // A stale tmp file from a crashed writer must not break a fresh save.
  const std::string stale_tmp = path_ + ".tmp.424242";
  {
    std::ofstream os(stale_tmp, std::ios::binary);
    os << "half-written garbage from a kill -9'd process";
  }
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  EXPECT_TRUE(analysis::load_scenario_cache(path_, config).has_value());
  // Saving over an existing cache is a whole-file replace, not an append.
  ASSERT_TRUE(analysis::save_scenario_cache(path_, config, original.crawl,
                                            original.ecosystem));
  EXPECT_TRUE(analysis::load_scenario_cache(path_, config).has_value());
  // No temporary of this process survives a successful save.
  const auto pid_tmp =
      path_ + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  EXPECT_FALSE(std::filesystem::exists(pid_tmp));
  std::remove(stale_tmp.c_str());
}

}  // namespace
}  // namespace reuse
