#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "dht/node_id.h"
#include "dht/routing_table.h"
#include "netbase/rng.h"

namespace reuse::dht {
namespace {

NodeId random_id(net::Rng& rng) {
  std::array<std::uint32_t, 5> words{};
  for (auto& w : words) w = static_cast<std::uint32_t>(rng());
  return NodeId(words);
}

TEST(NodeId, DeriveIsDeterministic) {
  EXPECT_EQ(NodeId::derive(1, 2), NodeId::derive(1, 2));
  EXPECT_NE(NodeId::derive(1, 2), NodeId::derive(1, 3));
  EXPECT_NE(NodeId::derive(1, 2), NodeId::derive(2, 2));
}

TEST(NodeId, RebootNonceChangesId) {
  // The paper's caveat: node_ids regenerate per boot, so two boots of the
  // same host yield different ids.
  std::unordered_set<NodeId> ids;
  for (std::uint64_t nonce = 0; nonce < 100; ++nonce) {
    ids.insert(NodeId::derive(0x0A000001, nonce));
  }
  EXPECT_EQ(ids.size(), 100u);
}

TEST(NodeId, DistanceIsSymmetricAndZeroOnSelf) {
  net::Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const NodeId a = random_id(rng);
    const NodeId b = random_id(rng);
    EXPECT_EQ(a.distance_to(b), b.distance_to(a));
    const auto self = a.distance_to(a);
    for (const std::uint32_t word : self) EXPECT_EQ(word, 0u);
  }
}

TEST(NodeId, BucketIndexMatchesHighestDifferingBit) {
  const NodeId zero(std::array<std::uint32_t, 5>{0, 0, 0, 0, 0});
  const NodeId top(std::array<std::uint32_t, 5>{0x80000000u, 0, 0, 0, 0});
  EXPECT_EQ(zero.bucket_index(top), 159);
  const NodeId bottom(std::array<std::uint32_t, 5>{0, 0, 0, 0, 1});
  EXPECT_EQ(zero.bucket_index(bottom), 0);
  EXPECT_EQ(zero.bucket_index(zero), -1);
  const NodeId mid(std::array<std::uint32_t, 5>{0, 1, 0, 0, 0});
  EXPECT_EQ(zero.bucket_index(mid), 96);
}

TEST(NodeId, HexRendering) {
  const NodeId id(std::array<std::uint32_t, 5>{0xDEADBEEFu, 1, 2, 3, 4});
  EXPECT_EQ(id.to_hex(),
            "deadbeef00000001000000020000000300000004");
}

TEST(RoutingTable, InsertRespectsBucketCapacity) {
  // Ids differing from own in the SAME top bit all land in one bucket; only
  // kBucketCapacity survive.
  const NodeId own(std::array<std::uint32_t, 5>{0, 0, 0, 0, 0});
  RoutingTable table(own);
  net::Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    std::array<std::uint32_t, 5> words{};
    words[0] = 0x80000000u | static_cast<std::uint32_t>(rng());
    for (std::size_t w = 1; w < 5; ++w) {
      words[w] = static_cast<std::uint32_t>(rng());
    }
    table.insert(NodeContact{net::Endpoint{net::Ipv4Address(i), 1}, NodeId(words)});
  }
  EXPECT_EQ(table.size(), RoutingTable::kBucketCapacity);
}

TEST(RoutingTable, IgnoresSelfAndDuplicates) {
  net::Rng rng(3);
  const NodeId own = random_id(rng);
  RoutingTable table(own);
  table.insert(NodeContact{net::Endpoint{net::Ipv4Address(1), 1}, own});
  EXPECT_EQ(table.size(), 0u);
  const NodeId other = random_id(rng);
  table.insert(NodeContact{net::Endpoint{net::Ipv4Address(1), 1}, other});
  table.insert(NodeContact{net::Endpoint{net::Ipv4Address(2), 2}, other});
  EXPECT_EQ(table.size(), 1u);
  // The first endpoint wins for plain insert.
  EXPECT_EQ(table.all_contacts().front().endpoint.port, 1);
}

TEST(RoutingTable, UpdateReplacesEndpoint) {
  net::Rng rng(4);
  const NodeId own = random_id(rng);
  RoutingTable table(own);
  const NodeId peer = random_id(rng);
  table.insert(NodeContact{net::Endpoint{net::Ipv4Address(1), 1}, peer});
  table.update(NodeContact{net::Endpoint{net::Ipv4Address(1), 99}, peer});
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.all_contacts().front().endpoint.port, 99);
}

// Property sweep: closest() agrees with an exact sort over all contacts.
class RoutingTableClosest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingTableClosest, MatchesBruteForce) {
  net::Rng rng(GetParam());
  const NodeId own = random_id(rng);
  RoutingTable table(own);
  std::vector<NodeContact> inserted;
  for (int i = 0; i < 200; ++i) {
    const NodeContact contact{
        net::Endpoint{net::Ipv4Address(static_cast<std::uint32_t>(i)), 1},
        random_id(rng)};
    const std::size_t before = table.size();
    table.insert(contact);
    if (table.size() > before) inserted.push_back(contact);
  }
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId target = random_id(rng);
    auto expected = inserted;
    std::sort(expected.begin(), expected.end(),
              [&](const NodeContact& a, const NodeContact& b) {
                return closer_to(target, a.id, b.id);
              });
    const auto actual = table.closest(target, 8);
    ASSERT_EQ(actual.size(), std::min<std::size_t>(8, expected.size()));
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].id, expected[i].id) << "rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingTableClosest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(RoutingTable, ClosestOnEmptyTableIsEmpty) {
  net::Rng rng(6);
  RoutingTable table(random_id(rng));
  EXPECT_TRUE(table.closest(random_id(rng), 8).empty());
}

}  // namespace
}  // namespace reuse::dht
