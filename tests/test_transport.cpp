#include "simnet/transport.h"

#include <gtest/gtest.h>

#include <string>

#include "simnet/event_queue.h"

namespace reuse::sim {
namespace {

using StringTransport = Transport<std::string, std::string>;

net::Endpoint ep(std::uint32_t host, std::uint16_t port) {
  return net::Endpoint{net::Ipv4Address(host), port};
}

TransportConfig lossless() {
  TransportConfig config;
  config.request_loss = 0.0;
  config.response_loss = 0.0;
  config.min_delay = net::Duration::seconds(1);
  config.max_delay = net::Duration::seconds(1);
  return config;
}

TEST(Transport, DeliversRequestAndResponse) {
  EventQueue events;
  StringTransport transport(events, net::Rng(1), lossless());
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string& request) {
    return std::optional<std::string>("re:" + request);
  });
  std::string received;
  net::SimTime when;
  transport.send_request(ep(2, 1000), ep(1, 80), "hello",
                         [&](const net::Endpoint& from, const std::string& r) {
                           received = r;
                           when = events.now();
                           EXPECT_EQ(from, ep(1, 80));
                         });
  events.run_all();
  EXPECT_EQ(received, "re:hello");
  EXPECT_EQ(when, net::SimTime(2));  // 1s out + 1s back
  EXPECT_EQ(transport.stats().requests_sent, 1u);
  EXPECT_EQ(transport.stats().responses_delivered, 1u);
  EXPECT_DOUBLE_EQ(transport.stats().response_rate(), 1.0);
}

TEST(Transport, UnboundEndpointIsSilent) {
  EventQueue events;
  StringTransport transport(events, net::Rng(2), lossless());
  bool called = false;
  transport.send_request(ep(2, 1), ep(9, 9), "x",
                         [&](const net::Endpoint&, const std::string&) {
                           called = true;
                         });
  events.run_all();
  EXPECT_FALSE(called);
  EXPECT_EQ(transport.stats().requests_unroutable, 1u);
}

TEST(Transport, HandlerMayDeclineToAnswer) {
  EventQueue events;
  StringTransport transport(events, net::Rng(3), lossless());
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>();  // offline application
  });
  bool called = false;
  transport.send_request(ep(2, 1), ep(1, 80), "x",
                         [&](const net::Endpoint&, const std::string&) {
                           called = true;
                         });
  events.run_all();
  EXPECT_FALSE(called);
  EXPECT_EQ(transport.stats().requests_delivered, 1u);
  EXPECT_EQ(transport.stats().responses_sent, 0u);
}

TEST(Transport, FullRequestLossDropsEverything) {
  EventQueue events;
  TransportConfig config = lossless();
  config.request_loss = 1.0;
  StringTransport transport(events, net::Rng(4), config);
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("never");
  });
  bool called = false;
  for (int i = 0; i < 10; ++i) {
    transport.send_request(ep(2, 1), ep(1, 80), "x",
                           [&](const net::Endpoint&, const std::string&) {
                             called = true;
                           });
  }
  events.run_all();
  EXPECT_FALSE(called);
  EXPECT_EQ(transport.stats().requests_lost, 10u);
  EXPECT_EQ(transport.stats().requests_delivered, 0u);
}

TEST(Transport, LossRateIsApproximatelyConfigured) {
  EventQueue events;
  TransportConfig config = lossless();
  config.request_loss = 0.3;
  config.response_loss = 0.3;
  StringTransport transport(events, net::Rng(5), config);
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("y");
  });
  int received = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    transport.send_request(ep(2, 1), ep(1, 80), "x",
                           [&](const net::Endpoint&, const std::string&) {
                             ++received;
                           });
  }
  events.run_all();
  EXPECT_NEAR(static_cast<double>(received) / kN, 0.49, 0.03);  // 0.7 * 0.7
}

TEST(Transport, RebindReplacesHandler) {
  EventQueue events;
  StringTransport transport(events, net::Rng(6), lossless());
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("old");
  });
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("new");
  });
  EXPECT_EQ(transport.bound_endpoints(), 1u);
  std::string received;
  transport.send_request(ep(2, 1), ep(1, 80), "x",
                         [&](const net::Endpoint&, const std::string& r) {
                           received = r;
                         });
  events.run_all();
  EXPECT_EQ(received, "new");
}

TEST(Transport, UnbindMakesEndpointStale) {
  EventQueue events;
  StringTransport transport(events, net::Rng(7), lossless());
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("y");
  });
  EXPECT_TRUE(transport.is_bound(ep(1, 80)));
  transport.unbind(ep(1, 80));
  EXPECT_FALSE(transport.is_bound(ep(1, 80)));
  bool called = false;
  transport.send_request(ep(2, 1), ep(1, 80), "x",
                         [&](const net::Endpoint&, const std::string&) {
                           called = true;
                         });
  events.run_all();
  EXPECT_FALSE(called);
}

TEST(Transport, DelayStaysWithinBounds) {
  EventQueue events;
  TransportConfig config;
  config.request_loss = 0.0;
  config.response_loss = 0.0;
  config.min_delay = net::Duration::seconds(2);
  config.max_delay = net::Duration::seconds(5);
  StringTransport transport(events, net::Rng(8), config);
  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("y");
  });
  for (int i = 0; i < 200; ++i) {
    transport.send_request(ep(2, 1), ep(1, 80), "x",
                           [&](const net::Endpoint&, const std::string&) {
                             const std::int64_t rtt = events.now().seconds();
                             EXPECT_GE(rtt, 4);
                             EXPECT_LE(rtt, 10);
                           });
  }
  events.run_all();
}

}  // namespace
}  // namespace reuse::sim
