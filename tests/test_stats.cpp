#include "netbase/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace reuse::net {
namespace {

TEST(OnlineStats, MatchesDirectComputation) {
  OnlineStats stats;
  const double samples[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  for (const double s : samples) stats.add(s);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.min(), 0.0);
  EXPECT_EQ(stats.max(), 0.0);
}

TEST(EmpiricalCdf, FractionAtMostIsAStepFunction) {
  const EmpiricalCdf cdf({1.0, 2.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(1.0), 0.25);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.0), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(2.5), 0.75);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(3.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_most(99.0), 1.0);
}

TEST(EmpiricalCdf, QuantilesUseNearestRank) {
  const EmpiricalCdf cdf({10.0, 20.0, 30.0, 40.0, 50.0});
  EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.2), 10.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 30.0);
  EXPECT_DOUBLE_EQ(cdf.median(), 30.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 50.0);
  EXPECT_DOUBLE_EQ(cdf.min(), 10.0);
  EXPECT_DOUBLE_EQ(cdf.max(), 50.0);
}

TEST(EmpiricalCdf, EmptyIsSafe) {
  const EmpiricalCdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.fraction_at_most(1.0), 0.0);
  EXPECT_EQ(cdf.quantile(0.5), 0.0);
  EXPECT_TRUE(cdf.curve().empty());
}

TEST(EmpiricalCdf, CurveEndsAtOne) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(i);
  const EmpiricalCdf cdf(std::move(samples));
  const auto curve = cdf.curve(50);
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 60u);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().first, 999.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
}

TEST(EmpiricalCdf, CurveRespectsMaxPointsNearTheBoundary) {
  // Floor-stride thinning used to emit up to 2x max_points when n was
  // slightly above max_points (n = 399, max = 200 gave stride 1).
  for (const std::size_t n : {201u, 250u, 399u, 400u, 401u}) {
    std::vector<double> samples;
    for (std::size_t i = 0; i < n; ++i) samples.push_back(static_cast<double>(i));
    const EmpiricalCdf cdf(std::move(samples));
    const auto curve = cdf.curve(200);
    EXPECT_LE(curve.size(), 201u) << "n = " << n;  // max_points + closing point
    EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
    EXPECT_DOUBLE_EQ(curve.back().first, static_cast<double>(n - 1));
  }
}

TEST(EmpiricalCdf, CurveHandlesDegenerateMaxPoints) {
  const EmpiricalCdf cdf({1.0, 2.0, 3.0});
  const auto curve = cdf.curve(0);  // clamped to 1 point + closing point
  ASSERT_FALSE(curve.empty());
  EXPECT_LE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.back().first, 3.0);
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(Histogram, BinsAndClamps) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(0.5);
  histogram.add(9.5);
  histogram.add(-5.0);   // clamps into bin 0
  histogram.add(100.0);  // clamps into last bin
  EXPECT_DOUBLE_EQ(histogram.count(0), 2.0);
  EXPECT_DOUBLE_EQ(histogram.count(9), 2.0);
  EXPECT_DOUBLE_EQ(histogram.total(), 4.0);
  EXPECT_DOUBLE_EQ(histogram.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(histogram.bin_high(3), 4.0);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, NanSamplesAreDropped) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.add(0.5);
  histogram.add(std::nan(""));
  histogram.add(std::numeric_limits<double>::quiet_NaN(), 3.0);
  EXPECT_DOUBLE_EQ(histogram.count(0), 1.0);  // NaN no longer lands in bin 0
  EXPECT_DOUBLE_EQ(histogram.total(), 1.0);
}

TEST(IntDistribution, CumulativeFractions) {
  IntDistribution distribution;
  distribution.add(2, 70);
  distribution.add(3, 20);
  distribution.add(10, 10);
  EXPECT_EQ(distribution.total(), 100);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(1), 0.0);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(2), 0.7);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(9), 0.9);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(10), 1.0);
  EXPECT_EQ(distribution.max_value(), 10);
}

TEST(IntDistribution, FastPathSurvivesInterleavedMutation) {
  // fraction_at_most caches prefix sums; adds must invalidate the cache
  // even when they touch an existing key (map size unchanged).
  IntDistribution distribution;
  distribution.add(2, 70);
  distribution.add(3, 30);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(2), 0.7);
  distribution.add(2, 100);  // existing key
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(2), 0.85);
  distribution.add(1, 800);  // new key below
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(1), 0.8);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(0), 0.0);
  EXPECT_DOUBLE_EQ(distribution.fraction_at_most(3), 1.0);
}

TEST(IntDistribution, SweepMatchesLinearRecomputation) {
  IntDistribution distribution;
  for (int i = 0; i < 200; ++i) distribution.add((i * 37) % 50, 1 + i % 7);
  std::int64_t running = 0;
  for (std::int64_t v = -1; v <= distribution.max_value() + 1; ++v) {
    const auto it = distribution.counts().find(v);
    if (it != distribution.counts().end()) running += it->second;
    EXPECT_DOUBLE_EQ(distribution.fraction_at_most(v),
                     static_cast<double>(running) /
                         static_cast<double>(distribution.total()));
  }
}

TEST(RoundSignificant, KeepsRequestedDigits) {
  EXPECT_DOUBLE_EQ(round_significant(12345.0, 3), 12300.0);
  EXPECT_DOUBLE_EQ(round_significant(0.0123456, 2), 0.012);
  EXPECT_DOUBLE_EQ(round_significant(0.0, 4), 0.0);
  EXPECT_DOUBLE_EQ(round_significant(-98765.0, 2), -99000.0);
}

TEST(Percent, Formats) {
  EXPECT_EQ(percent(0.613), "61.3%");
  EXPECT_EQ(percent(1.0, 0), "100%");
  EXPECT_EQ(percent(0.005, 2), "0.50%");
}

}  // namespace
}  // namespace reuse::net
