// Robustness of the blocklist ingestion path: hostile feed text through
// parse_list_text, corrupted/missing dumps through simulate_ecosystem, and
// gap-aware presence bridging in the snapshot store.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "blocklist/ecosystem.h"
#include "blocklist/parse.h"
#include "blocklist/store.h"
#include "internet/types.h"
#include "simnet/faults.h"

namespace reuse::blocklist {
namespace {

// --- parse_list_text fuzz-style cases --------------------------------------

TEST(ParseRobustness, EmptyAndWhitespaceOnly) {
  EXPECT_EQ(parse_list_text("").addresses.size(), 0u);
  EXPECT_EQ(parse_list_text("").skipped_lines, 0u);
  const ParsedList blank = parse_list_text("\n\n   \n\t\n");
  EXPECT_EQ(blank.addresses.size(), 0u);
  EXPECT_EQ(blank.prefixes.size(), 0u);
}

TEST(ParseRobustness, CommentOnlyFeed) {
  const ParsedList parsed =
      parse_list_text("# header\n; another style\n#10.0.0.1\n");
  EXPECT_EQ(parsed.addresses.size(), 0u);
  EXPECT_EQ(parsed.prefixes.size(), 0u);
}

TEST(ParseRobustness, TruncatedMidAddress) {
  // A download cut off inside the last address: everything before survives,
  // the stub is counted, nothing throws.
  const ParsedList parsed = parse_list_text("10.0.0.1\n10.0.0.2\n10.0.");
  EXPECT_EQ(parsed.addresses.size(), 2u);
  EXPECT_EQ(parsed.skipped_lines, 1u);
}

TEST(ParseRobustness, BinaryGarbage) {
  std::string junk;
  for (int i = 0; i < 256; ++i) {
    junk.push_back(static_cast<char>(i));
  }
  const ParsedList parsed = parse_list_text(junk);
  EXPECT_EQ(parsed.addresses.size(), 0u);
  EXPECT_GT(parsed.skipped_lines, 0u);
}

TEST(ParseRobustness, EmbeddedNulBytes) {
  const std::string text{"10.0.0.1\n10\0.0.2\n10.0.0.3\n", 26};
  const ParsedList parsed = parse_list_text(text);
  EXPECT_EQ(parsed.addresses.size(), 2u);
  EXPECT_EQ(parsed.skipped_lines, 1u);
}

TEST(ParseRobustness, CrlfOnlyFeed) {
  // Bare '\r' line endings (broken proxy): lines merge into one unparseable
  // run — no entries, no crash.
  const ParsedList parsed = parse_list_text("10.0.0.1\r10.0.0.2\r10.0.0.3\r");
  EXPECT_EQ(parsed.addresses.size(), 0u);
  EXPECT_GE(parsed.skipped_lines, 1u);
}

TEST(ParseRobustness, HugeSingleLine) {
  std::string line(1 << 20, 'x');
  line += '\n';
  const ParsedList parsed = parse_list_text(line);
  EXPECT_EQ(parsed.addresses.size(), 0u);
  EXPECT_EQ(parsed.skipped_lines, 1u);
}

TEST(ParseRobustness, MixedValidAndGarbage) {
  const ParsedList parsed = parse_list_text(
      "10.0.0.1\n"
      "999.0.0.1\n"
      "10.0.0.0/24\n"
      "10.0.0.2 trailing junk\n"
      "10.0.0.3\n");
  EXPECT_EQ(parsed.addresses.size(), 2u);  // .1 and .3
  EXPECT_EQ(parsed.prefixes.size(), 1u);
  EXPECT_GE(parsed.skipped_lines, 2u);
}

// --- ecosystem under feed faults -------------------------------------------

std::vector<BlocklistInfo> tiny_catalogue() {
  std::vector<BlocklistInfo> catalogue;
  for (int i = 0; i < 6; ++i) {
    BlocklistInfo info;
    info.id = static_cast<ListId>(i + 1);
    info.name = "list-" + std::to_string(i + 1);
    info.maintainer = "maintainer";
    info.category = ListCategory::kReputation;  // listens to every category
    info.pickup_rate = 0.8;
    info.removal_mean_days = 20.0;
    catalogue.push_back(info);
  }
  return catalogue;
}

std::vector<inet::AbuseEvent> dense_events(int days) {
  std::vector<inet::AbuseEvent> events;
  for (int day = 0; day < days; ++day) {
    for (int k = 0; k < 40; ++k) {
      inet::AbuseEvent event;
      event.time_seconds = day * 86400 + 1000 + k * 300;
      event.source = net::Ipv4Address(0x0a000000u + static_cast<unsigned>(k));
      event.category = inet::AbuseCategory::kScan;
      events.push_back(event);
    }
  }
  return events;
}

EcosystemConfig eco_config(int days) {
  EcosystemConfig config;
  config.seed = 17;
  config.periods = {net::TimeWindow{net::SimTime(0), net::SimTime(days * 86400)}};
  return config;
}

TEST(EcosystemFaults, FaultFreeRunHasCleanHealth) {
  const auto catalogue = tiny_catalogue();
  const auto events = dense_events(10);
  const auto result = simulate_ecosystem(catalogue, events, eco_config(10));
  EXPECT_EQ(result.stats.snapshots_missed, 0u);
  EXPECT_EQ(result.stats.feeds_quarantined, 0u);
  EXPECT_EQ(result.stats.feeds_salvaged, 0u);
  ASSERT_EQ(result.stats.per_list.size(), catalogue.size());
  for (const FeedHealth& health : result.stats.per_list) {
    EXPECT_EQ(health.days_recorded,
              static_cast<std::int64_t>(result.stats.snapshots_taken));
    EXPECT_EQ(health.days_missed + health.days_quarantined +
                  health.days_salvaged,
              0);
    EXPECT_EQ(health.entries_discarded, 0u);
  }
}

TEST(EcosystemFaults, OutageDaysAreMissedAndDayAccountingBalances) {
  const auto catalogue = tiny_catalogue();
  const auto events = dense_events(10);
  sim::FaultPlan plan;
  plan.seed = 3;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedOutage,
      net::TimeWindow{net::SimTime(2 * 86400), net::SimTime(5 * 86400)}, 1.0,
      1});
  sim::FaultInjector injector(plan);
  const auto result =
      simulate_ecosystem(catalogue, events, eco_config(10), &injector);
  // Severity 1.0 over 3 days x 6 lists: every dump in the window is missed.
  EXPECT_EQ(result.stats.snapshots_missed, 3u * catalogue.size());
  EXPECT_EQ(result.stats.snapshots_missed,
            injector.stats().feed_snapshots_suppressed);
  for (const FeedHealth& health : result.stats.per_list) {
    EXPECT_EQ(health.days_missed, 3);
    EXPECT_EQ(health.days_recorded + health.days_missed +
                  health.days_quarantined + health.days_salvaged,
              static_cast<std::int64_t>(result.stats.snapshots_taken));
  }
}

TEST(EcosystemFaults, CorruptionQuarantinesOrSalvagesExactly) {
  const auto catalogue = tiny_catalogue();
  const auto events = dense_events(12);
  sim::FaultPlan plan;
  plan.seed = 8;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedCorruption,
      net::TimeWindow{net::SimTime(3 * 86400), net::SimTime(9 * 86400)}, 0.7,
      1});
  sim::FaultInjector injector(plan);
  const auto result =
      simulate_ecosystem(catalogue, events, eco_config(12), &injector);
  EXPECT_GT(injector.stats().feeds_corrupted, 0u);
  // Every corrupted dump was either quarantined or salvaged — nothing lost.
  EXPECT_EQ(result.stats.feeds_quarantined + result.stats.feeds_salvaged,
            injector.stats().feeds_corrupted);
  std::uint64_t per_list_discarded = 0;
  for (const FeedHealth& health : result.stats.per_list) {
    EXPECT_EQ(health.days_recorded + health.days_missed +
                  health.days_quarantined + health.days_salvaged,
              static_cast<std::int64_t>(result.stats.snapshots_taken));
    per_list_discarded += health.entries_discarded;
  }
  EXPECT_EQ(per_list_discarded, result.stats.entries_discarded);
}

TEST(EcosystemFaults, PerListSkippedLinesSumToAggregateUnderCorruption) {
  const auto catalogue = tiny_catalogue();
  const auto events = dense_events(12);
  sim::FaultPlan plan;
  plan.seed = 8;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedCorruption,
      net::TimeWindow{net::SimTime(2 * 86400), net::SimTime(10 * 86400)}, 0.7,
      1});
  sim::FaultInjector injector(plan);
  const auto result =
      simulate_ecosystem(catalogue, events, eco_config(12), &injector);
  // The window is wide enough that both outcomes occur, so the attribution
  // below exercises the quarantine path and the salvage path.
  EXPECT_GT(result.stats.feeds_quarantined + result.stats.feeds_salvaged, 0u);
  EXPECT_GT(result.stats.feed_lines_skipped, 0u);
  std::uint64_t per_list_skipped = 0;
  for (const FeedHealth& health : result.stats.per_list) {
    per_list_skipped += health.lines_skipped;
  }
  EXPECT_EQ(per_list_skipped, result.stats.feed_lines_skipped);
}

TEST(EcosystemFaults, SameSeedSamePlanIsDeterministic) {
  const auto catalogue = tiny_catalogue();
  const auto events = dense_events(8);
  sim::FaultPlan plan;
  plan.seed = 4;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kFeedCorruption,
      net::TimeWindow{net::SimTime(86400), net::SimTime(6 * 86400)}, 0.5, 1});
  sim::FaultInjector a(plan);
  sim::FaultInjector b(plan);
  const auto first = simulate_ecosystem(catalogue, events, eco_config(8), &a);
  const auto second = simulate_ecosystem(catalogue, events, eco_config(8), &b);
  EXPECT_EQ(first.stats.per_list, second.stats.per_list);
  EXPECT_EQ(a.stats(), b.stats());
  EXPECT_EQ(first.store.listing_count(), second.store.listing_count());
}

// --- gap-aware presence bridging -------------------------------------------

TEST(StoreBridging, UnobservedGapMerges) {
  SnapshotStore store;
  const net::Ipv4Address addr(0x0a000001u);
  store.record(1, addr, 3);
  store.record(1, addr, 5);
  store.mark_observed(1, 3);
  store.mark_observed(1, 5);  // day 4 was never snapshotted
  const net::IntervalSet bridged = store.bridged_presence(1, addr);
  ASSERT_EQ(bridged.interval_count(), 1u);
  EXPECT_EQ(bridged.intervals().front().begin, 3);
  EXPECT_EQ(bridged.intervals().front().end, 6);
}

TEST(StoreBridging, ObservedAbsenceStaysAGap) {
  SnapshotStore store;
  const net::Ipv4Address addr(0x0a000001u);
  store.record(1, addr, 3);
  store.record(1, addr, 5);
  store.mark_observed_span(1, 3, 6);  // day 4 observed, address absent
  const net::IntervalSet bridged = store.bridged_presence(1, addr);
  EXPECT_EQ(bridged.interval_count(), 2u);
}

TEST(StoreBridging, NoObservedRecordPassesThroughUnchanged) {
  SnapshotStore store;
  const net::Ipv4Address addr(0x0a000001u);
  store.record(1, addr, 3);
  store.record(1, addr, 5);
  // Stores built before gap tracking (or via raw record()) bridge nothing.
  const net::IntervalSet bridged = store.bridged_presence(1, addr);
  EXPECT_EQ(bridged.interval_count(), 2u);
  EXPECT_EQ(store.observed_days(1), nullptr);
}

TEST(StoreBridging, PartiallyObservedGapStaysSplit) {
  SnapshotStore store;
  const net::Ipv4Address addr(0x0a000001u);
  store.record(1, addr, 2);
  store.record(1, addr, 8);
  store.mark_observed(1, 2);
  store.mark_observed(1, 5);  // one observed absence inside [3, 8)
  store.mark_observed(1, 8);
  EXPECT_EQ(store.bridged_presence(1, addr).interval_count(), 2u);
}

TEST(StoreBridging, UnknownListingIsEmpty) {
  SnapshotStore store;
  EXPECT_TRUE(store.bridged_presence(7, net::Ipv4Address(1)).empty());
}

}  // namespace
}  // namespace reuse::blocklist
