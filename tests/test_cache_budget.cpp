#include "sweep/cache_budget.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>

namespace reuse::sweep {
namespace {

namespace fs = std::filesystem;

class CacheBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "cache_budget";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }

  /// Writes `bytes` of payload and pins the mtime `age_rank` "days" in the
  /// past — larger rank = older file = earlier eviction candidate.
  std::string write_cache(const std::string& name, std::size_t bytes,
                          int age_rank) {
    const fs::path path = dir_ / name;
    std::ofstream(path) << std::string(bytes, 'x');
    fs::last_write_time(path, fs::file_time_type::clock::now() -
                                  std::chrono::hours(24 * age_rank));
    return path.string();
  }

  fs::path dir_;
};

TEST_F(CacheBudgetTest, AccountsWithoutEvictingWhenNoBudget) {
  write_cache("a.cache", 100, 3);
  write_cache("b.cache", 50, 1);
  const CacheBudgetReport report = enforce_cache_budget(dir_.string(), 0, {});
  EXPECT_FALSE(report.enforced);
  EXPECT_EQ(report.files_scanned, 2u);
  EXPECT_EQ(report.dir_bytes_before, 150);
  EXPECT_EQ(report.dir_bytes_after, 150);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_TRUE(fs::exists(dir_ / "a.cache"));
  EXPECT_TRUE(fs::exists(dir_ / "b.cache"));
}

TEST_F(CacheBudgetTest, EvictsOldestFirstUntilWithinBudget) {
  write_cache("old.cache", 100, 5);
  write_cache("mid.cache", 100, 3);
  write_cache("new.cache", 100, 1);
  const CacheBudgetReport report =
      enforce_cache_budget(dir_.string(), 150, {});
  EXPECT_TRUE(report.enforced);
  EXPECT_EQ(report.files_evicted, 2u);
  EXPECT_EQ(report.bytes_evicted, 200);
  EXPECT_EQ(report.dir_bytes_after, 100);
  EXPECT_FALSE(fs::exists(dir_ / "old.cache"));
  EXPECT_FALSE(fs::exists(dir_ / "mid.cache"));
  EXPECT_TRUE(fs::exists(dir_ / "new.cache")) << "newest survives";
}

TEST_F(CacheBudgetTest, UnderBudgetIsANoOp) {
  write_cache("a.cache", 100, 2);
  const CacheBudgetReport report =
      enforce_cache_budget(dir_.string(), 1000, {});
  EXPECT_TRUE(report.enforced);
  EXPECT_EQ(report.files_evicted, 0u);
  EXPECT_TRUE(fs::exists(dir_ / "a.cache"));
}

TEST_F(CacheBudgetTest, NeverEvictsTheActiveSet) {
  const std::string active_old = write_cache("active_old.cache", 100, 9);
  write_cache("idle.cache", 100, 2);
  // Budget below even the active file's size: the idle file goes, the
  // active one stays — a sweep must never evict its own cells, even when
  // the active set alone busts the budget.
  const CacheBudgetReport report =
      enforce_cache_budget(dir_.string(), 50, {active_old});
  EXPECT_EQ(report.files_protected, 1u);
  EXPECT_EQ(report.files_evicted, 1u);
  EXPECT_TRUE(fs::exists(dir_ / "active_old.cache"));
  EXPECT_FALSE(fs::exists(dir_ / "idle.cache"));
  EXPECT_EQ(report.dir_bytes_after, 100);
}

TEST_F(CacheBudgetTest, IgnoresNonCacheFilesAndMissingDir) {
  write_cache("a.cache", 100, 1);
  std::ofstream(dir_ / "notes.txt") << std::string(500, 'y');
  const CacheBudgetReport report = enforce_cache_budget(dir_.string(), 50, {});
  EXPECT_EQ(report.files_scanned, 1u);
  EXPECT_EQ(report.dir_bytes_before, 100);
  EXPECT_TRUE(fs::exists(dir_ / "notes.txt"))
      << "only *.cache files are eviction candidates";

  const CacheBudgetReport missing =
      enforce_cache_budget((dir_ / "nope").string(), 50, {});
  EXPECT_EQ(missing.files_scanned, 0u);
  EXPECT_EQ(missing.dir_bytes_before, 0);
}

TEST_F(CacheBudgetTest, EqualMtimesBreakTiesByPath) {
  const fs::path a = dir_ / "aa.cache";
  const fs::path b = dir_ / "bb.cache";
  std::ofstream(a) << std::string(100, 'x');
  std::ofstream(b) << std::string(100, 'x');
  const auto when =
      fs::file_time_type::clock::now() - std::chrono::hours(24);
  fs::last_write_time(a, when);
  fs::last_write_time(b, when);
  const CacheBudgetReport report =
      enforce_cache_budget(dir_.string(), 150, {});
  EXPECT_EQ(report.files_evicted, 1u);
  EXPECT_FALSE(fs::exists(a)) << "lexicographically-first path evicts first";
  EXPECT_TRUE(fs::exists(b));
}

}  // namespace
}  // namespace reuse::sweep
