// Further crawler behaviour: time-dependent availability, late replies,
// window discipline, and rate limiting — the operational corners of §3.1.
#include <gtest/gtest.h>

#include "crawler/crawler.h"
#include "dht/messages.h"
#include "simnet/event_queue.h"
#include "simnet/transport.h"

namespace reuse::crawler {
namespace {

using dht::DhtRequest;
using dht::DhtResponse;
using dht::GetNodesRequest;
using dht::NodeContact;
using dht::NodeId;

net::Ipv4Address addr(std::uint32_t value) { return net::Ipv4Address(value); }

NodeId make_id(std::uint32_t tag) {
  return NodeId(std::array<std::uint32_t, 5>{tag, tag, tag, tag, tag});
}

sim::TransportConfig lossless() {
  sim::TransportConfig config;
  config.request_loss = 0.0;
  config.response_loss = 0.0;
  config.min_delay = net::Duration::seconds(1);
  config.max_delay = net::Duration::seconds(1);
  return config;
}

/// A peer whose availability follows a schedule: online iff
/// (hour / period) % 2 == phase.
struct ScheduledPeer {
  NodeId id;
  std::vector<NodeContact> neighbors;
  int period_hours = 12;
  int phase = 0;

  [[nodiscard]] bool online(net::SimTime now) const {
    const auto block = now.seconds() / (period_hours * 3600);
    return block % 2 == phase;
  }
};

class Harness {
 public:
  Harness() : transport_(events_, net::Rng(1), lossless()) {}

  void add(const net::Endpoint& endpoint, ScheduledPeer peer) {
    transport_.bind(endpoint, [this, peer = std::move(peer)](
                                  const net::Endpoint&, const DhtRequest& request)
                                  -> std::optional<DhtResponse> {
      if (!peer.online(events_.now())) return std::nullopt;
      DhtResponse response;
      response.responder_id = peer.id;
      if (std::holds_alternative<GetNodesRequest>(request)) {
        response.neighbors = peer.neighbors;
      }
      return response;
    });
  }

  sim::EventQueue events_;
  sim::Transport<DhtRequest, DhtResponse> transport_;
};

// Two clients behind one NAT that are online in alternating 12-hour blocks
// — never simultaneously. The paper's rule requires CONCURRENT responses, so
// the address must NOT be flagged, however many ports are known.
TEST(CrawlerSchedules, NonOverlappingUsersAreNotConcurrent) {
  Harness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  harness.add(bootstrap, {make_id(1), {{a, make_id(10)}, {b, make_id(11)}},
                          /*period=*/1000000, /*phase=*/0});  // always on
  harness.add(a, {make_id(10), {}, 12, 0});
  harness.add(b, {make_id(11), {}, 12, 1});

  CrawlerConfig config;
  config.seed = 5;
  Crawler crawler(harness.transport_, harness.events_, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(3 * 86400)});
  harness.events_.run_until(net::SimTime(3 * 86400) + net::Duration::minutes(5));

  ASSERT_TRUE(crawler.discovered().contains(addr(10)));
  const IpEvidence& evidence = crawler.discovered().at(addr(10));
  EXPECT_EQ(evidence.ports.size(), 2u);
  EXPECT_GT(evidence.verification_rounds, 10u);
  EXPECT_FALSE(evidence.is_nated()) << "non-concurrent users flagged as NAT";
}

// Two clients with partially overlapping schedules (8h-period phase 0 and a
// 24/7 one): hourly re-pings eventually catch both online together.
TEST(CrawlerSchedules, RepingsCatchOverlappingWindows) {
  Harness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  harness.add(bootstrap, {make_id(1), {{a, make_id(10)}, {b, make_id(11)}},
                          1000000, 0});
  harness.add(a, {make_id(10), {}, 8, 0});
  harness.add(b, {make_id(11), {}, 1000000, 0});  // always on

  CrawlerConfig config;
  config.seed = 5;
  Crawler crawler(harness.transport_, harness.events_, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(2 * 86400)});
  harness.events_.run_until(net::SimTime(2 * 86400) + net::Duration::minutes(5));

  const auto nated = crawler.nated();
  ASSERT_EQ(nated.size(), 1u);
  EXPECT_EQ(nated[0].second, 2u);
}

// The crawler must stop contacting peers once its window closes.
TEST(CrawlerSchedules, StopsAtWindowEnd) {
  Harness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint solo{addr(10), 2000};
  harness.add(bootstrap, {make_id(1), {{solo, make_id(10)}}, 1000000, 0});
  harness.add(solo, {make_id(10), {}, 1000000, 0});

  CrawlerConfig config;
  config.seed = 5;
  Crawler crawler(harness.transport_, harness.events_, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(3600)});
  harness.events_.run_until(net::SimTime(3600) + net::Duration::minutes(2));
  const std::uint64_t sent_at_close =
      crawler.stats().get_nodes_sent + crawler.stats().pings_sent;
  // Let simulated time roll on; nothing further may be sent.
  harness.events_.run_until(net::SimTime(86400));
  EXPECT_EQ(crawler.stats().get_nodes_sent + crawler.stats().pings_sent,
            sent_at_close);
}

// Outbound volume respects the per-second budget.
TEST(CrawlerSchedules, RateLimitBoundsTraffic) {
  Harness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  // A clique of 40 peers so the discovery queue stays busy.
  std::vector<NodeContact> contacts;
  for (std::uint32_t i = 0; i < 40; ++i) {
    contacts.push_back(
        {net::Endpoint{addr(100 + i), 2000}, make_id(100 + i)});
  }
  harness.add(bootstrap, {make_id(1), contacts, 1000000, 0});
  for (std::uint32_t i = 0; i < 40; ++i) {
    harness.add({addr(100 + i), 2000}, {make_id(100 + i), contacts, 1000000, 0});
  }

  CrawlerConfig config;
  config.seed = 5;
  config.messages_per_second = 3;
  const std::int64_t seconds = 600;
  Crawler crawler(harness.transport_, harness.events_, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(seconds)});
  harness.events_.run_until(net::SimTime(seconds) + net::Duration::minutes(2));
  EXPECT_LE(crawler.stats().get_nodes_sent + crawler.stats().pings_sent,
            static_cast<std::uint64_t>(seconds) * 3);
}

// A reply that arrives after its verification round closed must not crash or
// corrupt counts (it is simply dropped from round accounting).
TEST(CrawlerSchedules, LateRepliesAreIgnoredSafely) {
  sim::EventQueue events;
  sim::TransportConfig slow;
  slow.request_loss = 0.0;
  slow.response_loss = 0.0;
  slow.min_delay = net::Duration::seconds(200);  // beyond the 90 s window
  slow.max_delay = net::Duration::seconds(220);
  sim::Transport<DhtRequest, DhtResponse> transport(events, net::Rng(2), slow);
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  auto bind = [&](const net::Endpoint& endpoint, NodeId id,
                  std::vector<NodeContact> neighbors) {
    transport.bind(endpoint, [id, neighbors](const net::Endpoint&,
                                             const DhtRequest& request)
                                 -> std::optional<DhtResponse> {
      DhtResponse response;
      response.responder_id = id;
      if (std::holds_alternative<GetNodesRequest>(request)) {
        response.neighbors = neighbors;
      }
      return response;
    });
  };
  bind(bootstrap, make_id(1), {{a, make_id(10)}, {b, make_id(11)}});
  bind(a, make_id(10), {});
  bind(b, make_id(11), {});

  CrawlerConfig config;
  config.seed = 5;
  Crawler crawler(transport, events, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(86400)});
  events.run_until(net::SimTime(86400) + net::Duration::minutes(10));
  // Replies always arrive ~400 s after the ping, i.e. after every round has
  // closed: the IP can never be verified even though both clients are live.
  EXPECT_TRUE(crawler.nated().empty());
  EXPECT_GT(crawler.stats().ping_responses, 0u);
}

}  // namespace
}  // namespace reuse::crawler
