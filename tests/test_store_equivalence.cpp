// Equivalence proof for the compressed presence store: the columnar
// SnapshotStore must answer every query exactly like the naive structure it
// replaced — one IntervalSet per (list, address) pair in a map. The oracle
// here *is* that old structure, reimplemented in ~30 lines; fuzzed workloads
// (point records, spans, duplicates, interleaved lists) drive both and
// compare every read surface. A second group checks the consumers that sit
// on top — scenario products across --jobs values and under a chaos plan —
// so the store swap is covered end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "analysis/scenario.h"
#include "blocklist/catalogue.h"
#include "blocklist/ecosystem.h"
#include "blocklist/store.h"
#include "internet/abuse.h"
#include "internet/config.h"
#include "internet/world.h"
#include "netbase/interval_set.h"
#include "netbase/rng.h"
#include "simnet/faults.h"

namespace reuse::blocklist {
namespace {

/// The pre-rebuild store layout: map keyed by (list, address) holding one
/// IntervalSet per listing. Every query the SnapshotStore answers is
/// re-derived from first principles here.
class OracleStore {
 public:
  void record_span(ListId list, net::Ipv4Address address, std::int64_t begin,
                   std::int64_t end) {
    if (begin >= end) return;
    presence_[{list, address.value()}].insert(begin, end);
  }

  [[nodiscard]] net::IntervalSet presence(ListId list,
                                          net::Ipv4Address address) const {
    const auto it = presence_.find({list, address.value()});
    return it == presence_.end() ? net::IntervalSet{} : it->second;
  }

  [[nodiscard]] std::size_t listing_count() const { return presence_.size(); }

  [[nodiscard]] std::vector<net::Ipv4Address> sorted_addresses() const {
    std::vector<net::Ipv4Address> out;
    for (const auto& [key, intervals] : presence_) {
      out.emplace_back(key.second);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  [[nodiscard]] std::vector<net::Ipv4Address> addresses_of(ListId list) const {
    std::vector<net::Ipv4Address> out;
    for (const auto& [key, intervals] : presence_) {
      if (key.first == list) out.emplace_back(key.second);
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Listings in ascending (list, address) order — for_each_listing's
  /// documented iteration order.
  [[nodiscard]] std::vector<std::pair<std::pair<ListId, std::uint32_t>,
                                      net::IntervalSet>>
  listings() const {
    return {presence_.begin(), presence_.end()};
  }

 private:
  std::map<std::pair<ListId, std::uint32_t>, net::IntervalSet> presence_;
};

void expect_equivalent(const SnapshotStore& store, const OracleStore& oracle) {
  EXPECT_EQ(store.listing_count(), oracle.listing_count());
  EXPECT_EQ(store.sorted_addresses(), oracle.sorted_addresses());
  EXPECT_EQ(store.address_count(), oracle.sorted_addresses().size());

  // Every listing, in order, with identical intervals.
  const auto expected = oracle.listings();
  std::size_t i = 0;
  store.for_each_listing([&](ListId list, net::Ipv4Address address,
                             const net::IntervalSet& presence) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(list, expected[i].first.first);
    EXPECT_EQ(address.value(), expected[i].first.second);
    EXPECT_EQ(presence.intervals(), expected[i].second.intervals());
    ++i;
  });
  EXPECT_EQ(i, expected.size());

  // Point surfaces: presence / has_listing / contains_address over both
  // recorded pairs and guaranteed misses.
  for (const auto& [key, intervals] : expected) {
    const net::Ipv4Address address(key.second);
    EXPECT_EQ(store.presence(key.first, address).intervals(),
              intervals.intervals());
    EXPECT_TRUE(store.has_listing(key.first, address));
    EXPECT_TRUE(store.contains_address(address));
    EXPECT_TRUE(store.presence(key.first + 101, address).empty());
  }
  const std::vector<net::Ipv4Address> universe = oracle.sorted_addresses();
  for (const net::Ipv4Address address : universe) {
    const net::Ipv4Address miss(address.value() ^ 0x80000001u);
    EXPECT_EQ(store.contains_address(miss),
              std::binary_search(universe.begin(), universe.end(), miss));
  }
}

TEST(StoreEquivalence, FuzzedWorkloads) {
  for (const std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    net::Rng rng(seed);
    SnapshotStore store;
    OracleStore oracle;
    const int lists = 1 + static_cast<int>(rng.uniform(6));
    const int ops = 4000;
    for (int op = 0; op < ops; ++op) {
      const auto list = static_cast<ListId>(rng.uniform(lists));
      // Few /24s + few offsets → heavy duplicate traffic, the regime where
      // run coalescing and pending-buffer folding actually fire.
      const net::Ipv4Address address(
          0x0a000000u + (static_cast<std::uint32_t>(rng.uniform(8)) << 8) +
          static_cast<std::uint32_t>(rng.uniform(48)));
      const auto begin = static_cast<std::int64_t>(rng.uniform(400));
      const std::int64_t end =
          begin + 1 + static_cast<std::int64_t>(rng.uniform(30));
      if (rng.bernoulli(0.3)) {
        store.record(list, address, begin);
        oracle.record_span(list, address, begin, begin + 1);
      } else {
        store.record_span(list, address, begin, end);
        oracle.record_span(list, address, begin, end);
      }
      // Interleave reads mid-stream so folds happen between mutations.
      if (op % 977 == 0) {
        expect_equivalent(store, oracle);
      }
    }
    expect_equivalent(store, oracle);

    // addresses_of / address_count_of per list.
    for (int list = 0; list < lists; ++list) {
      const auto id = static_cast<ListId>(list);
      EXPECT_EQ(store.addresses_of(id), oracle.addresses_of(id));
      EXPECT_EQ(store.address_count_of(id), oracle.addresses_of(id).size());
    }

    // blocklisted_slash24s covers exactly the /24s of the address universe.
    const net::PrefixSet slash24s = store.blocklisted_slash24s();
    for (const net::Ipv4Address address : oracle.sorted_addresses()) {
      EXPECT_TRUE(slash24s.contains_address(address));
    }
  }
}

// Streaming the abuse events through EcosystemSimulator in slices must be
// byte-equivalent to the one-shot simulate_ecosystem over the materialized
// stream — the scenario runs streamed (flat peak RSS), the unit tests and
// older callers run materialized, and both must describe the same ecosystem.
TEST(StoreEquivalence, StreamedEcosystemMatchesMaterialized) {
  const inet::World world(inet::test_world_config(5));
  const std::vector<BlocklistInfo> catalogue = build_catalogue(5);

  EcosystemConfig config;
  config.seed = 5;
  config.periods = paper_periods();

  inet::AbuseGenConfig abuse;
  abuse.window = net::TimeWindow{net::SimTime(-15 * 86400),
                                 net::SimTime(104 * 86400)};
  abuse.seed = 5 ^ 0xab5eULL;

  const std::vector<inet::AbuseEvent> events = generate_abuse(world, abuse);
  const EcosystemResult materialized =
      simulate_ecosystem(catalogue, events, config);

  // Re-assemble the stream from slices: concatenation must be exact, so
  // events can only ever fall into one slice with identical content.
  std::vector<inet::AbuseEvent> reassembled;
  EcosystemSimulator simulator(catalogue, config);
  std::size_t chunks = 0;
  inet::stream_abuse(world, abuse, /*chunk_days=*/17,
                     [&](std::span<const inet::AbuseEvent> chunk) {
                       ++chunks;
                       reassembled.insert(reassembled.end(), chunk.begin(),
                                          chunk.end());
                       simulator.ingest(chunk);
                     });
  const EcosystemResult streamed = simulator.finish();

  EXPECT_GT(chunks, 1u);
  ASSERT_EQ(reassembled.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reassembled[i].time_seconds, events[i].time_seconds);
    EXPECT_EQ(reassembled[i].source, events[i].source);
    EXPECT_EQ(reassembled[i].actor, events[i].actor);
  }

  EXPECT_EQ(streamed.stats.events_seen, materialized.stats.events_seen);
  EXPECT_EQ(streamed.stats.events_picked_up,
            materialized.stats.events_picked_up);
  EXPECT_EQ(streamed.stats.per_list, materialized.stats.per_list);
  ASSERT_EQ(streamed.store.listing_count(), materialized.store.listing_count());
  std::vector<std::pair<std::pair<ListId, std::uint32_t>,
                        std::vector<net::IntervalSet::Interval>>>
      expected;
  materialized.store.for_each_listing(
      [&](ListId list, net::Ipv4Address address,
          const net::IntervalSet& presence) {
        expected.push_back({{list, address.value()}, presence.intervals()});
      });
  std::size_t i = 0;
  streamed.store.for_each_listing([&](ListId list, net::Ipv4Address address,
                                      const net::IntervalSet& presence) {
    ASSERT_LT(i, expected.size());
    EXPECT_EQ(list, expected[i].first.first);
    EXPECT_EQ(address.value(), expected[i].first.second);
    EXPECT_EQ(presence.intervals(), expected[i].second);
    ++i;
  });
  EXPECT_EQ(i, expected.size());
}

TEST(StoreEquivalence, SpanAndPointRecordsCoalesceIdentically) {
  SnapshotStore by_days;
  SnapshotStore by_span;
  OracleStore oracle;
  const net::Ipv4Address address(0xc0a80101);
  // A 120-day stable listing recorded day by day must fold into the same
  // single run as one span append.
  for (std::int64_t day = 10; day < 130; ++day) {
    by_days.record(3, address, day);
  }
  by_span.record_span(3, address, 10, 130);
  oracle.record_span(3, address, 10, 130);
  expect_equivalent(by_days, oracle);
  expect_equivalent(by_span, oracle);
  EXPECT_EQ(by_days.presence(3, address).interval_count(), 1u);
}

}  // namespace
}  // namespace reuse::blocklist

namespace reuse::analysis {
namespace {

// The store feeds every downstream product (listings, NAT fanout joins,
// census blocks); the scenario fingerprint hashes them all. Identical
// fingerprints across --jobs values and under a chaos plan prove the
// compressed store keeps the parallel and fault paths byte-stable too.
TEST(StoreEquivalence, ScenarioFingerprintStableAcrossJobsAndChaos) {
  ScenarioConfig config;
  config.seed = 11;
  config.world = inet::test_world_config(11);
  config.world.as_count = 24;
  config.crawl_days = 1;
  config.fleet.probe_count = 60;
  config.run_census = true;
  config.census.window = {net::SimTime(0), net::SimTime(2 * 86400)};
  config.finalize();

  const auto fingerprint_at = [&](int jobs, bool chaos) {
    ScenarioConfig run = config;
    run.jobs = jobs;
    if (chaos) run.faults = default_chaos_plan(run, run.seed);
    run.finalize();
    const Scenario scenario = run_scenario(run);
    return products_fingerprint(scenario.crawl, scenario.ecosystem,
                                scenario.fleet, scenario.pipeline,
                                scenario.census);
  };

  const std::uint64_t baseline = fingerprint_at(1, false);
  EXPECT_EQ(fingerprint_at(2, false), baseline);
  EXPECT_EQ(fingerprint_at(8, false), baseline);

  const std::uint64_t chaos_baseline = fingerprint_at(1, true);
  EXPECT_NE(chaos_baseline, baseline);
  EXPECT_EQ(fingerprint_at(2, true), chaos_baseline);
  EXPECT_EQ(fingerprint_at(8, true), chaos_baseline);
}

}  // namespace
}  // namespace reuse::analysis
