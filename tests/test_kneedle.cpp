#include "netbase/kneedle.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "netbase/rng.h"

namespace reuse::net {
namespace {

TEST(Kneedle, FindsKneeOfConcaveIncreasingCurve) {
  // y = x^(1/3): strongly concave; the knee sits in the lower-x region.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(std::cbrt(static_cast<double>(i)));
  }
  const auto knee = find_knee(xs, ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_GT(knee->x, 1.0);
  EXPECT_LT(knee->x, 40.0);
}

TEST(Kneedle, FindsKneeOfConvexDecreasingCurve) {
  // y = 1/(x+1): convex decreasing, sharp bend near the origin.
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 / (1.0 + static_cast<double>(i)));
  }
  const auto knee = find_knee(xs, ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_LT(knee->x, 25.0);
}

TEST(Kneedle, StraightLineHasNoKnee) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 50; ++i) {
    xs.push_back(i);
    ys.push_back(2.0 * i + 1.0);
  }
  EXPECT_FALSE(find_knee(xs, ys).has_value());
}

TEST(Kneedle, TooFewPointsReturnsNothing) {
  const std::vector<double> xs{0.0, 1.0};
  const std::vector<double> ys{0.0, 1.0};
  EXPECT_FALSE(find_knee(xs, ys).has_value());
}

TEST(Kneedle, ConstantCurveReturnsNothing) {
  const std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0, 5.0};
  EXPECT_FALSE(find_knee(xs, ys).has_value());
}

TEST(Kneedle, IndexOverloadUsesPositions) {
  std::vector<double> ys;
  for (int i = 0; i <= 80; ++i) ys.push_back(std::sqrt(static_cast<double>(i)));
  const auto knee = find_knee(ys);
  ASSERT_TRUE(knee.has_value());
  EXPECT_EQ(knee->x, static_cast<double>(knee->index));
}

TEST(Kneedle, SmoothingRecoversNoisyKnee) {
  Rng rng(5);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 200; ++i) {
    xs.push_back(i);
    ys.push_back(std::cbrt(static_cast<double>(i)) + rng.normal(0.0, 0.05));
  }
  KneedleParams params;
  params.smoothing_window = 5;
  params.direction = CurveDirection::kIncreasing;
  params.shape = CurveShape::kConcave;
  const auto knee = find_knee(xs, ys, params);
  ASSERT_TRUE(knee.has_value());
  EXPECT_LT(knee->x, 80.0);
}

// The Figure 2 shape: a sorted-descending allocation-count curve where most
// probes have 1 allocation and a tail has hundreds. The knee's y-value is
// the threshold the pipeline uses; it must land well between the tail and
// the bulk.
TEST(Kneedle, Figure2LikeCurveKneesNearTailBoundary) {
  std::vector<double> ys;
  for (int i = 0; i < 120; ++i) {
    ys.push_back(600.0 / (1.0 + i * 0.8));  // churners: 600 down to ~6
  }
  for (int i = 0; i < 900; ++i) ys.push_back(1.0);  // stable probes
  std::vector<double> xs(ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) xs[i] = static_cast<double>(i);
  KneedleParams params;
  params.direction = CurveDirection::kDecreasing;
  params.shape = CurveShape::kConvex;
  const auto knee = find_knee(xs, ys, params);
  ASSERT_TRUE(knee.has_value());
  EXPECT_GE(knee->y, 2.0);
  EXPECT_LE(knee->y, 40.0);
}

TEST(Kneedle, InvariantUnderAxisScaling) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(std::cbrt(static_cast<double>(i)));
  }
  const auto base = find_knee(xs, ys);
  // Scale both axes by large constants; the knee index must not move.
  std::vector<double> xs_scaled;
  std::vector<double> ys_scaled;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs_scaled.push_back(xs[i] * 1000.0);
    ys_scaled.push_back(ys[i] * 1e6);
  }
  const auto scaled = find_knee(xs_scaled, ys_scaled);
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(scaled.has_value());
  EXPECT_EQ(base->index, scaled->index);
}

// Sensitivity sweep: higher sensitivity can only make knee detection more
// conservative (same knee or none), never an earlier spurious one.
class KneedleSensitivity : public ::testing::TestWithParam<double> {};

TEST_P(KneedleSensitivity, DetectsKneeOnCleanCurve) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i <= 100; ++i) {
    xs.push_back(i);
    ys.push_back(1.0 - std::exp(-i / 10.0));
  }
  KneedleParams params;
  params.sensitivity = GetParam();
  const auto knee = find_knee(xs, ys, params);
  ASSERT_TRUE(knee.has_value());
  EXPECT_GT(knee->x, 2.0);
  EXPECT_LT(knee->x, 40.0);
}

INSTANTIATE_TEST_SUITE_P(Sensitivities, KneedleSensitivity,
                         ::testing::Values(0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace reuse::net
