// Integration: the fleet log survives a CSV round trip and yields the exact
// same pipeline result — the guarantee behind the `dynadetect` CLI, which
// consumes externally produced logs.
#include <gtest/gtest.h>

#include <sstream>

#include "atlas/fleet.h"
#include "dynadetect/pipeline.h"
#include "internet/world.h"

namespace reuse::dynadetect {
namespace {

TEST(PipelineCsvIntegration, CsvRoundTripPreservesPipelineResult) {
  const inet::World world(inet::test_world_config(17));
  atlas::FleetConfig fleet_config;
  fleet_config.seed = 3;
  fleet_config.probe_count = 300;
  const atlas::AtlasFleet fleet(world, fleet_config);

  const std::vector<atlas::ConnectionRecord> expanded = fleet.expand_log();
  std::stringstream csv;
  atlas::write_csv(csv, expanded);
  const auto reloaded = atlas::read_csv(csv);
  ASSERT_TRUE(reloaded.has_value());
  ASSERT_EQ(reloaded->size(), expanded.size());

  // Three routes into the funnel: the compressed runs, the expanded
  // records, and the CSV round trip — all must agree exactly.
  const PipelineResult direct = run_pipeline(fleet.compressed_log());
  const PipelineResult expanded_result = run_pipeline(expanded);
  const PipelineResult via_csv = run_pipeline(*reloaded);
  EXPECT_EQ(direct.probes_total, expanded_result.probes_total);
  EXPECT_EQ(direct.probes_daily, expanded_result.probes_daily);
  EXPECT_EQ(direct.qualifying_probes, expanded_result.qualifying_probes);
  EXPECT_EQ(direct.dynamic_prefixes.size(),
            expanded_result.dynamic_prefixes.size());

  EXPECT_EQ(direct.probes_total, via_csv.probes_total);
  EXPECT_EQ(direct.probes_multi_as, via_csv.probes_multi_as);
  EXPECT_EQ(direct.probes_with_changes, via_csv.probes_with_changes);
  EXPECT_EQ(direct.knee_allocations, via_csv.knee_allocations);
  EXPECT_EQ(direct.probes_daily, via_csv.probes_daily);
  EXPECT_EQ(direct.qualifying_probes, via_csv.qualifying_probes);
  EXPECT_EQ(direct.dynamic_prefixes.size(), via_csv.dynamic_prefixes.size());
  for (const auto& prefix : direct.dynamic_prefixes.to_vector()) {
    EXPECT_TRUE(via_csv.dynamic_prefixes.contains_prefix(prefix))
        << prefix.to_string();
  }
}

TEST(PipelineCsvIntegration, QualifyingProbesAreOnFastPools) {
  const inet::World world(inet::test_world_config(17));
  atlas::FleetConfig fleet_config;
  fleet_config.seed = 3;
  fleet_config.probe_count = 600;
  const atlas::AtlasFleet fleet(world, fleet_config);
  const PipelineResult result = run_pipeline(fleet.compressed_log());
  for (const atlas::ProbeId id : result.qualifying_probes) {
    const atlas::ProbeTruth& truth = fleet.truth(id);
    EXPECT_TRUE(truth.on_dynamic_pool) << "probe " << id;
    EXPECT_FALSE(truth.relocated) << "probe " << id;
  }
}

TEST(PipelineCsvIntegration, EmittedPrefixesBelongToQualifyingPools) {
  const inet::World world(inet::test_world_config(19));
  atlas::FleetConfig fleet_config;
  fleet_config.seed = 5;
  fleet_config.probe_count = 600;
  const atlas::AtlasFleet fleet(world, fleet_config);
  const PipelineResult result = run_pipeline(fleet.compressed_log());
  for (const auto& prefix : result.dynamic_prefixes.to_vector()) {
    EXPECT_TRUE(world.dynamic_prefixes().contains_prefix(prefix))
        << prefix.to_string() << " not a pool prefix";
  }
}

}  // namespace
}  // namespace reuse::dynadetect
