#include "netbase/prefix_trie.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netbase/rng.h"

namespace reuse::net {
namespace {

Ipv4Address addr(const char* text) { return *Ipv4Address::parse(text); }
Ipv4Prefix pfx(const char* text) { return *Ipv4Prefix::parse(text); }

TEST(PrefixTrie, EmptyLookupsMissEverything) {
  PrefixTrie<int> trie;
  EXPECT_TRUE(trie.empty());
  EXPECT_FALSE(trie.lookup(addr("1.2.3.4")).has_value());
  EXPECT_FALSE(trie.contains(addr("0.0.0.0")));
}

TEST(PrefixTrie, LongestPrefixMatchWins) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  trie.insert(pfx("10.1.0.0/16"), 16);
  trie.insert(pfx("10.1.2.0/24"), 24);
  EXPECT_EQ(trie.lookup(addr("10.1.2.3")), 24);
  EXPECT_EQ(trie.lookup(addr("10.1.9.1")), 16);
  EXPECT_EQ(trie.lookup(addr("10.9.9.9")), 8);
  EXPECT_FALSE(trie.lookup(addr("11.0.0.0")).has_value());
}

TEST(PrefixTrie, DefaultRouteMatchesEverything) {
  PrefixTrie<int> trie;
  trie.insert(pfx("0.0.0.0/0"), 1);
  EXPECT_EQ(trie.lookup(addr("255.255.255.255")), 1);
  EXPECT_EQ(trie.lookup(addr("0.0.0.0")), 1);
}

TEST(PrefixTrie, InsertOverwritesSamePrefix) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.0.0.0/8"), 2);
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.lookup(addr("10.0.0.1")), 2);
}

TEST(PrefixTrie, ExactIgnoresCoveringPrefixes) {
  PrefixTrie<int> trie;
  trie.insert(pfx("10.0.0.0/8"), 8);
  EXPECT_NE(trie.exact(pfx("10.0.0.0/8")), nullptr);
  EXPECT_EQ(trie.exact(pfx("10.1.0.0/16")), nullptr);
  EXPECT_EQ(trie.exact(pfx("0.0.0.0/0")), nullptr);
}

TEST(PrefixTrie, HostRoutesWork) {
  PrefixTrie<int> trie;
  trie.insert(pfx("1.2.3.4/32"), 42);
  EXPECT_EQ(trie.lookup(addr("1.2.3.4")), 42);
  EXPECT_FALSE(trie.lookup(addr("1.2.3.5")).has_value());
}

TEST(PrefixTrie, ForEachVisitsInAddressOrder) {
  PrefixTrie<int> trie;
  trie.insert(pfx("20.0.0.0/8"), 2);
  trie.insert(pfx("10.0.0.0/8"), 1);
  trie.insert(pfx("10.5.0.0/16"), 3);
  std::vector<Ipv4Prefix> visited;
  trie.for_each([&](Ipv4Prefix prefix, int) { visited.push_back(prefix); });
  ASSERT_EQ(visited.size(), 3u);
  EXPECT_EQ(visited[0], pfx("10.0.0.0/8"));
  EXPECT_EQ(visited[1], pfx("10.5.0.0/16"));
  EXPECT_EQ(visited[2], pfx("20.0.0.0/8"));
}

// Property sweep: trie LPM agrees with a brute-force linear scan, across
// random prefix sets of several sizes.
class PrefixTrieProperty : public ::testing::TestWithParam<int> {};

TEST_P(PrefixTrieProperty, AgreesWithLinearScan) {
  const int prefix_count = GetParam();
  Rng rng(static_cast<std::uint64_t>(prefix_count) * 7919);
  PrefixTrie<std::size_t> trie;
  std::vector<Ipv4Prefix> reference;
  for (int i = 0; i < prefix_count; ++i) {
    const Ipv4Address base(static_cast<std::uint32_t>(rng()));
    const int length = static_cast<int>(rng.uniform(33));
    const Ipv4Prefix prefix(base, length);
    // Keep the reference free of duplicates so values stay well defined.
    if (std::find(reference.begin(), reference.end(), prefix) !=
        reference.end()) {
      continue;
    }
    reference.push_back(prefix);
    trie.insert(prefix, reference.size() - 1);
  }
  EXPECT_EQ(trie.size(), reference.size());
  for (int i = 0; i < 2000; ++i) {
    const Ipv4Address probe(static_cast<std::uint32_t>(rng()));
    // Linear-scan longest match.
    int best_length = -1;
    std::size_t best_index = 0;
    for (std::size_t j = 0; j < reference.size(); ++j) {
      if (reference[j].contains(probe) && reference[j].length() > best_length) {
        best_length = reference[j].length();
        best_index = j;
      }
    }
    const auto result = trie.lookup(probe);
    if (best_length < 0) {
      EXPECT_FALSE(result.has_value());
    } else {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, best_index);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixTrieProperty,
                         ::testing::Values(1, 4, 16, 64, 256, 1024));

TEST(PrefixSet, ContainmentQueries) {
  PrefixSet set;
  set.insert(pfx("10.1.2.0/24"));
  set.insert(pfx("10.1.3.0/24"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains_address(addr("10.1.2.200")));
  EXPECT_FALSE(set.contains_address(addr("10.1.4.1")));
  EXPECT_TRUE(set.contains_prefix(pfx("10.1.2.0/24")));
  EXPECT_FALSE(set.contains_prefix(pfx("10.1.2.0/25")));
  const auto prefixes = set.to_vector();
  EXPECT_EQ(prefixes.size(), 2u);
}

}  // namespace
}  // namespace reuse::net
