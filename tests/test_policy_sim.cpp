#include "analysis/policy_sim.h"

#include <gtest/gtest.h>

#include "analysis/scenario.h"

namespace reuse::analysis {
namespace {

class PolicySimTest : public ::testing::Test {
 protected:
  static const Scenario& scenario() {
    static const Scenario kScenario = [] {
      ScenarioConfig config;
      config.seed = 7;
      config.world = inet::test_world_config(7);
      config.world.as_count = 60;
      config.crawl_days = 1;
      config.fleet.probe_count = 400;
      config.run_census = false;
      config.finalize();
      return run_scenario(config);
    }();
    return kScenario;
  }

  static std::vector<PolicyOutcome> outcomes() {
    return simulate_policies(scenario().world, scenario().ecosystem.store,
                             scenario().crawl.nated_set,
                             scenario().pipeline.dynamic_prefixes,
                             PolicySimConfig{});
  }
};

TEST_F(PolicySimTest, ReturnsAllThreePolicies) {
  const auto results = outcomes();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].policy, FilterPolicy::kAllowAll);
  EXPECT_EQ(results[1].policy, FilterPolicy::kBlockListed);
  EXPECT_EQ(results[2].policy, FilterPolicy::kGreylistReused);
}

TEST_F(PolicySimTest, TrafficVolumeIsPolicyIndependent) {
  const auto results = outcomes();
  // Common random numbers: every policy faces the same sessions.
  EXPECT_EQ(results[0].legit_sessions, results[1].legit_sessions);
  EXPECT_EQ(results[0].legit_sessions, results[2].legit_sessions);
  EXPECT_EQ(results[0].abuse_sessions, results[1].abuse_sessions);
  EXPECT_EQ(results[0].abuse_sessions, results[2].abuse_sessions);
  EXPECT_GT(results[0].legit_sessions, 0u);
  EXPECT_GT(results[0].abuse_sessions, 0u);
}

TEST_F(PolicySimTest, AllowAllHasNoHarmAndFullEscape) {
  const auto results = outcomes();
  EXPECT_EQ(results[0].legit_blocked, 0u);
  EXPECT_EQ(results[0].legit_delayed, 0u);
  EXPECT_DOUBLE_EQ(results[0].abuse_escape_rate(), 1.0);
}

TEST_F(PolicySimTest, HardBlockingHarmsEveryBystander) {
  const auto results = outcomes();
  EXPECT_EQ(results[1].legit_blocked, results[1].legit_sessions);
  EXPECT_EQ(results[1].abuse_admitted, 0u);
  EXPECT_DOUBLE_EQ(results[1].bystander_harm_rate(), 1.0);
}

TEST_F(PolicySimTest, GreylistingSitsStrictlyBetween) {
  const auto results = outcomes();
  const auto& greylist = results[2];
  // Less harm than hard blocking, more than allowing everything.
  EXPECT_LT(greylist.legit_blocked, results[1].legit_blocked);
  EXPECT_GT(greylist.legit_delayed, 0u);
  // Some abuse leaks through retries, but far less than allow-all.
  EXPECT_LT(greylist.abuse_admitted, results[0].abuse_admitted);
  EXPECT_LT(greylist.abuse_escape_rate(), 0.2);
}

TEST_F(PolicySimTest, DeterministicForSeed) {
  const auto a = outcomes();
  const auto b = outcomes();
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].legit_blocked, b[i].legit_blocked);
    EXPECT_EQ(a[i].abuse_admitted, b[i].abuse_admitted);
  }
}

TEST_F(PolicySimTest, RetryRatesShapeTheGreylistOutcome) {
  PolicySimConfig generous;
  generous.legit_retry_rate = 1.0;
  generous.abuse_retry_rate = 0.0;
  const auto results = simulate_policies(
      scenario().world, scenario().ecosystem.store, scenario().crawl.nated_set,
      scenario().pipeline.dynamic_prefixes, generous);
  const auto& greylist = results[2];
  // Perfect retry split: greylisted legit sessions all pass (only the
  // non-reused listings still block), and no greylisted abuse leaks.
  EXPECT_EQ(greylist.abuse_admitted, 0u);
  EXPECT_LT(greylist.bystander_harm_rate(), 1.0);
}

TEST(PolicySimHelpers, PolicyNames) {
  EXPECT_EQ(to_string(FilterPolicy::kAllowAll), "allow all");
  EXPECT_EQ(to_string(FilterPolicy::kBlockListed), "block listed");
  EXPECT_EQ(to_string(FilterPolicy::kGreylistReused), "greylist reused");
}

}  // namespace
}  // namespace reuse::analysis
