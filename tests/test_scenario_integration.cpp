// End-to-end integration: a small scenario run through every subsystem,
// asserting the cross-module invariants the study rests on.
#include "analysis/scenario.h"

#include <gtest/gtest.h>

#include "analysis/impact.h"

namespace reuse::analysis {
namespace {

class ScenarioTest : public ::testing::Test {
 protected:
  static ScenarioConfig config() {
    // Smaller than test_scenario_config: integration must stay fast.
    ScenarioConfig config;
    config.seed = 7;
    config.world = inet::test_world_config(7);
    config.world.as_count = 60;
    config.crawl_days = 1;
    config.fleet.probe_count = 400;
    config.census.block_sample_fraction = 0.2;
    config.census.window = {net::SimTime(0), net::SimTime(5 * 86400)};
    config.finalize();
    return config;
  }

  static const Scenario& scenario() {
    static const Scenario kScenario = run_scenario(config());
    return kScenario;
  }
};

TEST_F(ScenarioTest, AllSubsystemsProduceOutput) {
  EXPECT_GT(scenario().ecosystem.store.listing_count(), 0u);
  EXPECT_GT(scenario().crawl.evidence.size(), 0u);
  EXPECT_GT(scenario().crawl.nated.size(), 0u);
  EXPECT_GT(scenario().pipeline.probes_total, 0u);
  EXPECT_GT(scenario().census.blocks_surveyed, 0u);
  EXPECT_EQ(scenario().catalogue.size(), 149u);
}

TEST_F(ScenarioTest, NatDetectionHasPerfectPrecisionOnGroundTruth) {
  const DetectorValidation validation =
      validate_nat_detection(scenario().world, scenario().crawl.nated_set);
  // The >= 2 concurrent-responder rule admits no false positives by
  // construction — this is the paper's core accuracy claim.
  EXPECT_EQ(validation.true_positives, validation.detected);
}

TEST_F(ScenarioTest, DynamicDetectionHasPerfectPrecisionOnGroundTruth) {
  const DetectorValidation validation = validate_dynamic_detection(
      scenario().world, scenario().pipeline.dynamic_prefixes);
  EXPECT_EQ(validation.true_positives, validation.detected);
}

TEST_F(ScenarioTest, CrawlerRespectedBlocklistRestriction) {
  const net::PrefixSet blocklisted =
      scenario().ecosystem.store.blocklisted_slash24s();
  for (const auto& [address, evidence] : scenario().crawl.evidence) {
    EXPECT_TRUE(blocklisted.contains_address(address))
        << address.to_string() << " crawled outside blocklisted space";
  }
}

TEST_F(ScenarioTest, NatedUserCountsAreLowerBounds) {
  for (const auto& [address, users] : scenario().crawl.nated) {
    EXPECT_GE(users, 2u);
    EXPECT_LE(users, scenario().world.users_behind(address))
        << address.to_string();
  }
}

TEST_F(ScenarioTest, PipelineFunnelIsMonotone) {
  const auto& pipeline = scenario().pipeline;
  EXPECT_EQ(pipeline.probes_total,
            pipeline.probes_single_as + pipeline.probes_multi_as);
  EXPECT_LE(pipeline.probes_above_knee, pipeline.probes_single_as);
  EXPECT_LE(pipeline.probes_daily, pipeline.probes_above_knee);
  EXPECT_EQ(pipeline.qualifying_probes.size(), pipeline.probes_daily);
  EXPECT_GE(pipeline.knee_allocations, 2);
}

TEST_F(ScenarioTest, ImpactJoinsAreInternallyConsistent) {
  const ReuseImpact impact = compute_reuse_impact(
      scenario().ecosystem.store, scenario().catalogue,
      scenario().crawl.nated_set, scenario().pipeline.dynamic_prefixes);
  EXPECT_LE(impact.nated_listings, impact.total_listings);
  EXPECT_LE(impact.dynamic_listings, impact.total_listings);
  EXPECT_LE(impact.lists_with_nated, impact.lists_total);
  EXPECT_LE(impact.nated_blocklisted_addresses,
            scenario().crawl.nated.size());
  std::size_t per_list_total = 0;
  for (const auto& counts : impact.per_list) {
    per_list_total += counts.total_addresses;
  }
  EXPECT_EQ(per_list_total, impact.total_listings);
}

TEST_F(ScenarioTest, DurationsAreBoundedByPeriodLengths) {
  const ListingDurations durations = compute_listing_durations(
      scenario().ecosystem.store, scenario().crawl.nated_set,
      scenario().pipeline.dynamic_prefixes);
  ASSERT_FALSE(durations.all_days.empty());
  for (const double days : durations.all_days) {
    EXPECT_GE(days, 1.0);
    EXPECT_LE(days, 44.0);  // the longer period
  }
}

TEST_F(ScenarioTest, CoverageCurvesPlateauBelowBlocklistedCurve) {
  const AsCoverage coverage = compute_as_coverage(
      scenario().world, scenario().ecosystem.store, scenario().crawl.evidence,
      scenario().pipeline.all_probe_prefixes);
  EXPECT_GT(coverage.ases_with_blocklisted, 0u);
  EXPECT_LE(coverage.ases_with_bittorrent, coverage.ases_with_blocklisted);
  EXPECT_LE(coverage.ases_with_ripe, coverage.ases_with_blocklisted);
  EXPECT_GT(coverage.ases_with_bittorrent, 0u);
}

TEST_F(ScenarioTest, DeterministicAcrossRuns) {
  const Scenario again = run_scenario(config());
  EXPECT_EQ(again.ecosystem.store.listing_count(),
            scenario().ecosystem.store.listing_count());
  EXPECT_EQ(again.crawl.nated.size(), scenario().crawl.nated.size());
  EXPECT_EQ(again.pipeline.probes_daily, scenario().pipeline.probes_daily);
  EXPECT_EQ(again.census.dynamic_blocks.size(),
            scenario().census.dynamic_blocks.size());
}

}  // namespace
}  // namespace reuse::analysis
