// Unit tests for the metrics registry (netbase/metrics), the shared JSON
// escape helper, the StageTimer telemetry fixes, and the run manifest.
//
// The registry under test here is mostly a process-local instance so the
// cases stay independent of what other code registered in the global
// registry; the manifest tests use the global one (that is what the
// manifest snapshots) and only assert properties that are stable however
// many metrics exist.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "analysis/manifest.h"
#include "analysis/stage_timer.h"
#include "netbase/json.h"
#include "netbase/metrics.h"

namespace reuse {
namespace {

using net::metrics::Registry;

TEST(JsonEscape, EscapesQuotesBackslashesAndControlCharacters) {
  EXPECT_EQ(net::json_escape("plain"), "plain");
  EXPECT_EQ(net::json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(net::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(net::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(net::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(net::json_escape(std::string("nul\0byte", 8)), "nul\\u0000byte");
  EXPECT_EQ(net::json_escape("\x01"), "\\u0001");
  // Bytes >= 0x20 pass through untouched, so UTF-8 survives.
  EXPECT_EQ(net::json_escape("caf\xc3\xa9"), "caf\xc3\xa9");
}

TEST(Metrics, CounterAccumulates) {
  Registry registry;
  auto& hits = registry.counter("hits_total", "test counter");
  EXPECT_EQ(hits.value(), 0u);
  hits.increment();
  hits.add(41);
  EXPECT_EQ(hits.value(), 42u);
  // Same name resolves to the same handle.
  EXPECT_EQ(&registry.counter("hits_total", "test counter"), &hits);
}

TEST(Metrics, GaugeSetAddAndRecordMax) {
  Registry registry;
  auto& depth = registry.gauge("depth", "test gauge");
  depth.set(7);
  EXPECT_EQ(depth.value(), 7);
  depth.add(-3);
  EXPECT_EQ(depth.value(), 4);
  depth.record_max(10);
  EXPECT_EQ(depth.value(), 10);
  depth.record_max(2);  // never lowers
  EXPECT_EQ(depth.value(), 10);
}

TEST(Metrics, HistogramBucketsAreInclusiveUpperBounds) {
  Registry registry;
  auto& h = registry.histogram("latency", "test histogram", {1, 4, 16});
  h.observe(0);
  h.observe(1);   // boundary: lands in the le=1 bucket
  h.observe(2);
  h.observe(16);  // boundary: lands in the le=16 bucket
  h.observe(99);  // overflow
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);  // +Inf overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0 + 1 + 2 + 16 + 99);
}

TEST(Metrics, HistogramRejectsBadBounds) {
  Registry registry;
  EXPECT_THROW(registry.histogram("empty", "h", {}), std::logic_error);
  EXPECT_THROW(registry.histogram("nonmono", "h", {1, 1}), std::logic_error);
  EXPECT_THROW(registry.histogram("decreasing", "h", {4, 2}),
               std::logic_error);
}

TEST(Metrics, KindClashAndBadNamesThrow) {
  Registry registry;
  registry.counter("taken", "a counter");
  EXPECT_THROW(registry.gauge("taken", "now a gauge?"), std::logic_error);
  EXPECT_THROW(registry.histogram("taken", "now a histogram?", {1}),
               std::logic_error);
  EXPECT_THROW(registry.counter("", "empty name"), std::logic_error);
  EXPECT_THROW(registry.counter("1starts_with_digit", "bad"),
               std::logic_error);
  EXPECT_THROW(registry.counter("has-dash", "bad"), std::logic_error);
}

TEST(Metrics, ResetZeroesValuesButKeepsRegistrations) {
  Registry registry;
  auto& c = registry.counter("events_total", "c");
  auto& g = registry.gauge("level", "g");
  auto& h = registry.histogram("sizes", "h", {10});
  c.add(5);
  g.set(-2);
  h.observe(3);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_EQ(h.bucket_count(0), 0u);
  // Handles stay valid and re-resolvable after reset.
  EXPECT_EQ(&registry.counter("events_total", "c"), &c);
}

TEST(Metrics, JsonSnapshotIsSortedAndComplete) {
  Registry registry;
  registry.counter("zeta_total", "last alphabetically").add(2);
  registry.counter("alpha_total", "first alphabetically").add(1);
  registry.gauge("beta", "a gauge").set(-7);
  registry.histogram("gamma", "a histogram", {1, 2}).observe(3);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha_total\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"zeta_total\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"beta\": -7"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\": 1"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 0}"), std::string::npos);
  // Sorted export: alpha before zeta regardless of registration order.
  EXPECT_LT(json.find("alpha_total"), json.find("zeta_total"));
  // Snapshotting is pure: repeated calls are byte-identical.
  EXPECT_EQ(registry.to_json(), json);
}

TEST(Metrics, PrometheusExpositionFormat) {
  Registry registry;
  registry.counter("reqs_total", "requests").add(3);
  registry.gauge("temp", "temperature").set(21);
  auto& h = registry.histogram("lat", "latency", {1, 4});
  h.observe(0);
  h.observe(2);
  h.observe(9);
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# HELP reqs_total requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE reqs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("reqs_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE temp gauge\n"), std::string::npos);
  EXPECT_NE(text.find("temp 21\n"), std::string::npos);
  // Histogram buckets are cumulative and end in +Inf == _count.
  EXPECT_NE(text.find("lat_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"4\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_bucket{le=\"+Inf\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("lat_sum 11\n"), std::string::npos);
  EXPECT_NE(text.find("lat_count 3\n"), std::string::npos);
}

TEST(Metrics, FlatValuesExpandsHistogramsAndFiltersPrefix) {
  Registry registry;
  registry.counter("keep_total", "kept").add(4);
  registry.counter("pool_steals_total", "excluded").add(9);
  registry.histogram("keep_hist", "kept histogram", {2}).observe(5);
  const auto values = registry.flat_values("pool_");
  auto find = [&values](const std::string& name) -> const std::int64_t* {
    for (const auto& [n, v] : values) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(find("keep_total"), nullptr);
  EXPECT_EQ(*find("keep_total"), 4);
  EXPECT_EQ(find("pool_steals_total"), nullptr);
  ASSERT_NE(find("keep_hist_bucket_2"), nullptr);
  EXPECT_EQ(*find("keep_hist_bucket_2"), 0);
  ASSERT_NE(find("keep_hist_bucket_inf"), nullptr);
  EXPECT_EQ(*find("keep_hist_bucket_inf"), 1);
  ASSERT_NE(find("keep_hist_sum"), nullptr);
  EXPECT_EQ(*find("keep_hist_sum"), 5);
  ASSERT_NE(find("keep_hist_count"), nullptr);
  // Sorted by name.
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1].first, values[i].first);
  }
}

TEST(Metrics, ConcurrentIncrementsLoseNothing) {
  Registry registry;
  auto& c = registry.counter("contended_total", "hammered from 8 threads");
  auto& h = registry.histogram("contended_hist", "hammered too", {100});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_count(0), static_cast<std::uint64_t>(kThreads) *
                                   kPerThread);
}

TEST(StageTimer, JsonEscapesStageNames) {
  analysis::StageTimer timer;
  timer.record("quoted \"stage\"\n", 1.5);
  const std::string json = timer.to_json(2);
  EXPECT_NE(json.find("\"quoted \\\"stage\\\"\\n\": 1.500"),
            std::string::npos);
  // The raw (unescaped) name must not appear — it would break the JSON.
  EXPECT_EQ(json.find("\"quoted \"stage\""), std::string::npos);
}

TEST(StageTimer, TimeRecordsEvenWhenTheCallableThrows) {
  analysis::StageTimer timer;
  EXPECT_THROW(timer.time("doomed", [] {
    throw std::runtime_error("stage failed");
    return 1;
  }),
               std::runtime_error);
  ASSERT_EQ(timer.timings().size(), 1u);
  EXPECT_EQ(timer.timings()[0].stage, "doomed");
  EXPECT_GE(timer.timings()[0].millis, 0.0);
  // A successful stage still records and forwards its return value.
  EXPECT_EQ(timer.time("fine", [] { return 7; }), 7);
  EXPECT_EQ(timer.timings().size(), 2u);
}

TEST(StageTimer, SameNameScopesAggregateInsteadOfOverwriting) {
  // Re-running a stage (cache replay), nesting a sub-scope, or closing
  // overlapping per-shard scopes must fold into one entry — the old
  // behaviour of overwriting silently dropped all but the last recording.
  analysis::StageTimer timer;
  timer.record("crawl", 100.0);
  timer.record("crawl", 25.0);
  timer.record("crawl", 0.5);
  const auto timings = timer.timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_DOUBLE_EQ(timings[0].millis, 125.5);
  EXPECT_EQ(timings[0].scopes, 3u);
  EXPECT_DOUBLE_EQ(timer.millis("crawl"), 125.5);
}

TEST(StageTimer, NestedTimeScopesAggregateUnderOneName) {
  analysis::StageTimer timer;
  timer.time("outer", [&] {
    timer.time("outer", [] {});
    timer.time("outer", [] {});
  });
  const auto timings = timer.timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_EQ(timings[0].scopes, 3u);
}

TEST(StageTimer, SubStagesAreExcludedFromTotalMillis) {
  // Dotted names are attribution detail recorded *inside* their parent
  // scope; adding them to the total would double-count that time.
  analysis::StageTimer timer;
  timer.record("crawl", 100.0);
  timer.record("crawl.build", 30.0);
  timer.record("crawl.events", 60.0);
  timer.record("ecosystem", 50.0);
  EXPECT_DOUBLE_EQ(timer.total_millis(), 150.0);
  // But they are still visible individually and in the JSON.
  EXPECT_DOUBLE_EQ(timer.millis("crawl.build"), 30.0);
  EXPECT_NE(timer.to_json(1).find("\"crawl.events\": 60.000"),
            std::string::npos);
}

TEST(StageTimer, ConcurrentRecordsFromShardWorkersAllLand) {
  // The sharded crawl records sub-stage scopes from pool workers while the
  // scenario thread owns the enclosing scope; nothing may be lost or torn.
  analysis::StageTimer timer;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&timer] {
      for (int i = 0; i < kPerThread; ++i) timer.record("crawl.events", 1.0);
    });
  }
  for (std::thread& thread : threads) thread.join();
  const auto timings = timer.timings();
  ASSERT_EQ(timings.size(), 1u);
  EXPECT_DOUBLE_EQ(timings[0].millis, kThreads * kPerThread * 1.0);
  EXPECT_EQ(timings[0].scopes,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(StageTimer, MoveTransfersTimingsAndLeavesSourceEmpty) {
  // Scenario and CachedScenario move their StageTimer; the mutex stays
  // with each object, the entries move.
  analysis::StageTimer source;
  source.record("world", 5.0);
  analysis::StageTimer moved(std::move(source));
  EXPECT_DOUBLE_EQ(moved.millis("world"), 5.0);
  EXPECT_TRUE(source.timings().empty());  // NOLINT(bugprone-use-after-move)
  source.record("fresh", 1.0);
  analysis::StageTimer assigned;
  assigned.record("stale", 9.0);
  assigned = std::move(source);
  ASSERT_EQ(assigned.timings().size(), 1u);
  EXPECT_EQ(assigned.timings()[0].stage, "fresh");
}

TEST(RunManifest, NullConfigRendersNullFieldsAndCrossCuttingFamilies) {
  analysis::RunManifestInfo info;
  info.tool = "unit \"test\"";
  const std::string json = analysis::run_manifest_json(info);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"unit \\\"test\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"config_fingerprint\": null"), std::string::npos);
  EXPECT_NE(json.find("\"seed\": null"), std::string::npos);
  EXPECT_NE(json.find("\"jobs\": null"), std::string::npos);
  EXPECT_NE(json.find("\"fault_plan\": null"), std::string::npos);
  EXPECT_NE(json.find("\"cache\": null"), std::string::npos);
  EXPECT_NE(json.find("\"stages\": null"), std::string::npos);
  EXPECT_NE(json.find("\"calibration_version\": "), std::string::npos);
  // The cross-cutting families are registered by the manifest itself even
  // when the run never exercised them.
  EXPECT_NE(json.find("cache_hits_total"), std::string::npos);
  EXPECT_NE(json.find("faults_bootstrap_blackholes_total"),
            std::string::npos);
  EXPECT_NE(json.find("pool_tasks_run_total"), std::string::npos);
}

TEST(RunManifest, StageTimesAndCacheVerdictRender) {
  analysis::StageTimer timer;
  timer.record("world", 3.25);
  analysis::RunManifestInfo info;
  info.tool = "unit_test";
  info.stage_times = &timer;
  info.cache_hit = true;
  const std::string json = analysis::run_manifest_json(info);
  EXPECT_NE(json.find("\"cache\": {\"consulted\": true, \"hit\": true}"),
            std::string::npos);
  EXPECT_NE(json.find("\"world\": 3.250"), std::string::npos);
}

}  // namespace
}  // namespace reuse
