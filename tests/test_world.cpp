#include "internet/world.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace reuse::inet {
namespace {

class WorldTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World kWorld(test_world_config(7));
    return kWorld;
  }
};

TEST_F(WorldTest, BuildsRequestedAsCount) {
  EXPECT_EQ(world().ases().size(), test_world_config(7).as_count);
  EXPECT_GT(world().prefix_count(), 0u);
  EXPECT_GT(world().user_count(), 0u);
}

TEST_F(WorldTest, FlagshipAsIs4134) {
  EXPECT_EQ(world().ases().front().asn, 4134u);
  EXPECT_NE(world().find_as(4134), nullptr);
  EXPECT_EQ(world().find_as(999999), nullptr);
}

TEST_F(WorldTest, AsnsAreUnique) {
  std::unordered_set<Asn> asns;
  for (const AsInfo& as_info : world().ases()) {
    EXPECT_TRUE(asns.insert(as_info.asn).second) << as_info.asn;
  }
}

TEST_F(WorldTest, PrefixRolesAreConsistentWithRecords) {
  for (const AsInfo& as_info : world().ases()) {
    ASSERT_EQ(as_info.prefixes.size(), as_info.roles.size());
    for (std::size_t i = 0; i < as_info.prefixes.size(); ++i) {
      const PrefixRecord* record =
          world().prefix_record(as_info.prefixes[i].network());
      ASSERT_NE(record, nullptr);
      EXPECT_EQ(record->asn, as_info.asn);
      EXPECT_EQ(record->role, as_info.roles[i]);
    }
  }
}

TEST_F(WorldTest, UserAddressesSitInOwnAsWithMatchingRole) {
  int checked = 0;
  for (const User& user : world().users()) {
    if (user.attachment == AttachmentKind::kDynamic) continue;
    EXPECT_EQ(world().asn_of(user.fixed_address), user.asn);
    const PrefixRole role = world().role_of(user.fixed_address);
    switch (user.attachment) {
      case AttachmentKind::kStatic:
        EXPECT_EQ(role, PrefixRole::kStaticResidential);
        break;
      case AttachmentKind::kHomeNat:
        EXPECT_EQ(role, PrefixRole::kHomeNatResidential);
        break;
      case AttachmentKind::kCgn:
        EXPECT_EQ(role, PrefixRole::kCgnPool);
        break;
      default:
        break;
    }
    if (++checked > 5000) break;  // sampling is plenty
  }
}

TEST_F(WorldTest, UserIdsAreDense) {
  for (std::size_t i = 0; i < std::min<std::size_t>(world().users().size(), 1000); ++i) {
    EXPECT_EQ(world().users()[i].id, i + 1);
    EXPECT_EQ(world().user(i + 1).id, i + 1);
  }
}

TEST_F(WorldTest, NatGroupsMatchFanoutGroundTruth) {
  for (const NatGroup& group : world().nat_groups()) {
    EXPECT_FALSE(group.members.empty());
    EXPECT_EQ(world().users_behind(group.public_address), group.members.size());
    EXPECT_EQ(world().nat_group_fanout(group.public_address),
              group.members.size());
    for (const UserId id : group.members) {
      const User& member = world().user(id);
      EXPECT_EQ(member.fixed_address, group.public_address);
      EXPECT_EQ(member.asn, group.asn);
      EXPECT_EQ(member.attachment, group.carrier_grade
                                       ? AttachmentKind::kCgn
                                       : AttachmentKind::kHomeNat);
    }
  }
}

TEST_F(WorldTest, CgnGroupsHaveAtLeastTwoMembers) {
  for (const NatGroup& group : world().nat_groups()) {
    if (group.carrier_grade) {
      EXPECT_GE(group.members.size(), 2u);
    }
    EXPECT_LE(group.members.size(),
              world().config().cgn_users_cap);
  }
}

TEST_F(WorldTest, StaticOccupancyCountsAsOneUser) {
  int checked = 0;
  for (const User& user : world().users()) {
    if (user.attachment != AttachmentKind::kStatic) continue;
    EXPECT_EQ(world().users_behind(user.fixed_address), 1u);
    EXPECT_TRUE(world().is_static_occupied(user.fixed_address));
    EXPECT_FALSE(world().is_shared_address(user.fixed_address));
    if (++checked > 2000) break;
  }
}

TEST_F(WorldTest, UnassignedSpaceHasNoUsers) {
  EXPECT_EQ(world().users_behind(net::Ipv4Address(42)), 0u);
  EXPECT_EQ(world().asn_of(net::Ipv4Address(42)), 0u);
  EXPECT_EQ(world().role_of(net::Ipv4Address(42)), PrefixRole::kUnused);
}

TEST_F(WorldTest, DynamicPoolsAreInternallyConsistent) {
  std::size_t total_subscribers = 0;
  for (const DynamicPoolInfo& pool : world().pools()) {
    EXPECT_FALSE(pool.prefixes.empty());
    EXPECT_GT(pool.mean_lease_seconds, 0.0);
    total_subscribers += pool.subscribers.size();
    // Pool must be over-provisioned so leases can rotate.
    EXPECT_LE(pool.subscribers.size(), pool.prefixes.size() * 256);
    for (const net::Ipv4Prefix& prefix : pool.prefixes) {
      EXPECT_TRUE(world().dynamic_prefixes().contains_prefix(prefix));
      const PrefixRecord* record = world().prefix_record(prefix.network());
      ASSERT_NE(record, nullptr);
      EXPECT_EQ(record->role, PrefixRole::kDynamicPool);
      EXPECT_EQ(&world().pool(record->pool_index), &pool);
    }
    for (const UserId id : pool.subscribers) {
      EXPECT_EQ(world().user(id).attachment, AttachmentKind::kDynamic);
      EXPECT_EQ(world().user(id).asn, pool.asn);
    }
  }
  std::size_t dynamic_users = 0;
  for (const User& user : world().users()) {
    dynamic_users += user.attachment == AttachmentKind::kDynamic;
  }
  EXPECT_EQ(total_subscribers, dynamic_users);
}

TEST_F(WorldTest, FastDynamicPrefixesAreSubsetOfDynamic) {
  for (const net::Ipv4Prefix& prefix :
       world().fast_dynamic_prefixes().to_vector()) {
    EXPECT_TRUE(world().dynamic_prefixes().contains_prefix(prefix));
  }
  EXPECT_LT(world().fast_dynamic_prefixes().size(),
            world().dynamic_prefixes().size());
  EXPECT_GT(world().fast_dynamic_prefixes().size(), 0u);
}

TEST_F(WorldTest, BittorrentAndInfectedIndexesMatchFlags) {
  std::size_t bt = 0;
  std::size_t infected = 0;
  for (const User& user : world().users()) {
    bt += user.uses_bittorrent;
    infected += user.infected;
    if (user.infected) {
      EXPECT_NE(user.abuse_mask, 0);
    }
  }
  EXPECT_EQ(bt, world().bittorrent_users().size());
  EXPECT_EQ(infected, world().infected_users().size());
  for (const UserId id : world().bittorrent_users()) {
    EXPECT_TRUE(world().user(id).uses_bittorrent);
  }
}

TEST_F(WorldTest, MaliciousServersLiveInServerSpace) {
  for (const MaliciousServer& server : world().malicious_servers()) {
    EXPECT_EQ(world().role_of(server.address), PrefixRole::kServerHosting);
    EXPECT_EQ(world().asn_of(server.address), server.asn);
    EXPECT_NE(server.abuse_mask, 0);
  }
  EXPECT_GT(world().malicious_servers().size(), 0u);
}

TEST(WorldDeterminism, SameSeedSameWorld) {
  const World a(test_world_config(3));
  const World b(test_world_config(3));
  EXPECT_EQ(a.user_count(), b.user_count());
  EXPECT_EQ(a.prefix_count(), b.prefix_count());
  EXPECT_EQ(a.nat_groups().size(), b.nat_groups().size());
  EXPECT_EQ(a.malicious_servers().size(), b.malicious_servers().size());
  for (std::size_t i = 0; i < std::min<std::size_t>(a.user_count(), 500); ++i) {
    EXPECT_EQ(a.users()[i].fixed_address, b.users()[i].fixed_address);
    EXPECT_EQ(a.users()[i].seed, b.users()[i].seed);
  }
}

TEST(WorldDeterminism, DifferentSeedsDiffer) {
  const World a(test_world_config(3));
  const World b(test_world_config(4));
  EXPECT_NE(a.user_count(), b.user_count());
}

}  // namespace
}  // namespace reuse::inet
