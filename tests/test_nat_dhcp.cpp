#include <gtest/gtest.h>

#include <unordered_set>

#include "simnet/dhcp.h"
#include "simnet/nat.h"

namespace reuse::sim {
namespace {

net::Ipv4Address addr(const char* text) {
  return *net::Ipv4Address::parse(text);
}

TEST(NatDevice, AssignsDistinctPortsPerHost) {
  NatDevice nat(addr("100.64.0.1"));
  const net::Endpoint a = nat.bind(1);
  const net::Endpoint b = nat.bind(2);
  const net::Endpoint c = nat.bind(3);
  EXPECT_EQ(a.address, addr("100.64.0.1"));
  std::unordered_set<std::uint16_t> ports{a.port, b.port, c.port};
  EXPECT_EQ(ports.size(), 3u);
  EXPECT_EQ(nat.active_hosts(), 3u);
}

TEST(NatDevice, RebindRetiresOldMapping) {
  NatDevice nat(addr("100.64.0.1"));
  const net::Endpoint first = nat.bind(1);
  const net::Endpoint second = nat.bind(1);
  EXPECT_NE(first.port, second.port);
  EXPECT_EQ(nat.active_hosts(), 1u);
  EXPECT_FALSE(nat.host_at(first.port).has_value());
  EXPECT_EQ(nat.host_at(second.port), 1u);
  EXPECT_EQ(nat.endpoint_of(1), second);
}

TEST(NatDevice, ReleaseFreesPort) {
  NatDevice nat(addr("100.64.0.1"));
  const net::Endpoint mapped = nat.bind(1);
  nat.release(1);
  EXPECT_EQ(nat.active_hosts(), 0u);
  EXPECT_FALSE(nat.host_at(mapped.port).has_value());
  EXPECT_FALSE(nat.endpoint_of(1).has_value());
  nat.release(1);  // double release is harmless
}

TEST(NatDevice, PortAllocationSkipsBusyPorts) {
  NatDevice nat(addr("100.64.0.1"), 65534);
  const net::Endpoint a = nat.bind(1);  // 65534
  const net::Endpoint b = nat.bind(2);  // 65535
  const net::Endpoint c = nat.bind(3);  // wraps to 1024
  EXPECT_EQ(a.port, 65534);
  EXPECT_EQ(b.port, 65535);
  EXPECT_EQ(c.port, 1024);
  // Wrap again: 65534/65535 busy, so next free is 1025.
  const net::Endpoint d = nat.bind(4);
  EXPECT_EQ(d.port, 1025);
}

TEST(AddressPool, LeasesAreExclusive) {
  AddressPool pool({*net::Ipv4Prefix::parse("10.0.0.0/28")},
                   PoolPolicy::kRandom, net::Rng(1));
  EXPECT_EQ(pool.size(), 16u);
  std::unordered_set<net::Ipv4Address> held;
  for (SubscriberId s = 1; s <= 16; ++s) {
    const auto lease = pool.lease(s);
    ASSERT_TRUE(lease.has_value());
    EXPECT_TRUE(held.insert(*lease).second) << "duplicate lease";
    EXPECT_EQ(pool.holder_of(*lease), s);
  }
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_FALSE(pool.lease(99).has_value());  // exhausted
}

TEST(AddressPool, RenewalReturnsDifferentAddressUsually) {
  AddressPool pool({*net::Ipv4Prefix::parse("10.0.0.0/24")},
                   PoolPolicy::kRandom, net::Rng(2));
  const auto first = pool.lease(1);
  const auto second = pool.lease(1);  // renewal: old address released first
  ASSERT_TRUE(first && second);
  EXPECT_EQ(pool.leased_count(), 1u);
  EXPECT_FALSE(pool.holder_of(*first).has_value() &&
               *pool.holder_of(*first) == 1 && *first != *second);
}

TEST(AddressPool, ReleaseMakesAddressAvailableAgain) {
  AddressPool pool({*net::Ipv4Prefix::parse("10.0.0.0/30")},
                   PoolPolicy::kMostRecently, net::Rng(3));
  const auto lease = pool.lease(1);
  ASSERT_TRUE(lease.has_value());
  pool.release(1);
  EXPECT_EQ(pool.free_count(), 4u);
  // LIFO policy hands the just-released address straight back — the exact
  // hazard that re-taints a new subscriber fastest.
  const auto next = pool.lease(2);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, *lease);
}

TEST(AddressPool, FifoPolicyDelaysReuse) {
  AddressPool pool({*net::Ipv4Prefix::parse("10.0.0.0/30")},
                   PoolPolicy::kLeastRecently, net::Rng(4));
  const auto a = pool.lease(1);
  pool.release(1);
  // Three other addresses are older in the free list, so the released one
  // comes back last.
  std::unordered_set<net::Ipv4Address> next_three;
  for (SubscriberId s = 2; s <= 4; ++s) next_three.insert(*pool.lease(s));
  EXPECT_FALSE(next_three.contains(*a));
  EXPECT_EQ(*pool.lease(5), *a);
}

TEST(AddressPool, EmptyPrefixSetThrows) {
  EXPECT_THROW(AddressPool({}, PoolPolicy::kRandom, net::Rng(5)),
               std::invalid_argument);
}

TEST(AddressPool, AddressOfTracksCurrentLease) {
  AddressPool pool({*net::Ipv4Prefix::parse("10.0.0.0/29")},
                   PoolPolicy::kRandom, net::Rng(6));
  EXPECT_FALSE(pool.address_of(1).has_value());
  const auto lease = pool.lease(1);
  EXPECT_EQ(pool.address_of(1), lease);
}

}  // namespace
}  // namespace reuse::sim
