#include "netbase/sim_time.h"

#include <gtest/gtest.h>

namespace reuse::net {
namespace {

TEST(Duration, FactoryUnits) {
  EXPECT_EQ(Duration::seconds(90).count(), 90);
  EXPECT_EQ(Duration::minutes(20).count(), 1200);
  EXPECT_EQ(Duration::hours(2).count(), 7200);
  EXPECT_EQ(Duration::days(3).count(), 259200);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ((Duration::hours(1) + Duration::minutes(30)).count(), 5400);
  EXPECT_EQ((Duration::days(1) - Duration::hours(1)).count(), 82800);
  EXPECT_EQ((Duration::minutes(10) * 6).count(), 3600);
  EXPECT_EQ((Duration::days(1) / 4).count(), 21600);
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::days(2).as_days(), 2.0);
  EXPECT_DOUBLE_EQ(Duration::minutes(90).as_hours(), 1.5);
}

TEST(Duration, ToStringShowsComponents) {
  EXPECT_EQ(Duration(2 * 86400 + 3 * 3600 + 15 * 60 + 7).to_string(),
            "2d 03:15:07");
  EXPECT_EQ(Duration(-3661).to_string(), "-0d 01:01:01");
}

TEST(SimTime, Arithmetic) {
  const SimTime t = SimTime::epoch() + Duration::days(2) + Duration::hours(5);
  EXPECT_EQ(t.seconds(), 2 * 86400 + 5 * 3600);
  EXPECT_EQ(t.day(), 2);
  EXPECT_EQ((t - SimTime::epoch()).count(), t.seconds());
  EXPECT_EQ((t - Duration::hours(5)).day(), 2);
}

TEST(SimTime, Ordering) {
  EXPECT_LT(SimTime(100), SimTime(101));
  EXPECT_EQ(SimTime(5), SimTime::epoch() + Duration::seconds(5));
}

TEST(SimTime, ToStringShowsDayAndClock) {
  EXPECT_EQ(SimTime(86400 + 3600 + 61).to_string(), "day 1 01:01:01");
}

TEST(TimeWindow, ContainsHalfOpen) {
  const TimeWindow window{SimTime(10), SimTime(20)};
  EXPECT_FALSE(window.contains(SimTime(9)));
  EXPECT_TRUE(window.contains(SimTime(10)));
  EXPECT_TRUE(window.contains(SimTime(19)));
  EXPECT_FALSE(window.contains(SimTime(20)));
  EXPECT_EQ(window.length().count(), 10);
}

}  // namespace
}  // namespace reuse::net
