// Crawler behaviour under controlled conditions: hand-built DHT topologies
// where ground truth is exact, exercising the paper's verification rule —
// >= 2 concurrent bt_ping replies with distinct node_ids AND ports.
#include "crawler/crawler.h"

#include <gtest/gtest.h>

#include "dht/messages.h"
#include "simnet/event_queue.h"
#include "simnet/transport.h"

namespace reuse::crawler {
namespace {

using dht::BtPingRequest;
using dht::DhtRequest;
using dht::DhtResponse;
using dht::GetNodesRequest;
using dht::NodeContact;
using dht::NodeId;

net::Ipv4Address addr(std::uint32_t value) { return net::Ipv4Address(value); }

NodeId make_id(std::uint32_t tag) {
  return NodeId(std::array<std::uint32_t, 5>{tag, tag, tag, tag, tag});
}

/// A scripted peer: always online, fixed node_id, fixed neighbour list.
struct ScriptedPeer {
  NodeId id;
  std::vector<NodeContact> neighbors;
};

class CrawlerHarness {
 public:
  CrawlerHarness() : transport_(events_, net::Rng(1), lossless()) {}

  static sim::TransportConfig lossless() {
    sim::TransportConfig config;
    config.request_loss = 0.0;
    config.response_loss = 0.0;
    config.min_delay = net::Duration::seconds(1);
    config.max_delay = net::Duration::seconds(1);
    return config;
  }

  void add_peer(const net::Endpoint& endpoint, ScriptedPeer peer) {
    transport_.bind(endpoint, [peer = std::move(peer)](
                                  const net::Endpoint&, const DhtRequest& request)
                                  -> std::optional<DhtResponse> {
      DhtResponse response;
      response.responder_id = peer.id;
      response.version = "TEST";
      if (std::holds_alternative<GetNodesRequest>(request)) {
        response.neighbors = peer.neighbors;
      }
      return response;
    });
  }

  /// Runs a crawl from `bootstrap` over `days` days.
  Crawler& crawl(const net::Endpoint& bootstrap, int days,
                 CrawlerConfig config = {}) {
    config.seed = 5;
    crawler_ = std::make_unique<Crawler>(transport_, events_, bootstrap,
                                         std::move(config));
    const net::TimeWindow window{net::SimTime(0), net::SimTime(days * 86400)};
    crawler_->start(window);
    events_.run_until(window.end + net::Duration::minutes(5));
    return *crawler_;
  }

  sim::EventQueue events_;
  sim::Transport<DhtRequest, DhtResponse> transport_;
  std::unique_ptr<Crawler> crawler_;
};

// Bootstrap at .1; two live clients behind the NAT address .10 on ports
// 2000/3000 (distinct ids). The crawler must flag .10 as NATed with a
// 2-user lower bound.
TEST(Crawler, DetectsTwoUserNat) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint nat_a{addr(10), 2000};
  const net::Endpoint nat_b{addr(10), 3000};
  harness.add_peer(bootstrap,
                   {make_id(1), {{nat_a, make_id(10)}, {nat_b, make_id(11)}}});
  harness.add_peer(nat_a, {make_id(10), {{nat_b, make_id(11)}}});
  harness.add_peer(nat_b, {make_id(11), {{nat_a, make_id(10)}}});

  Crawler& crawler = harness.crawl(bootstrap, 1);
  const auto nated = crawler.nated();
  ASSERT_EQ(nated.size(), 1u);
  EXPECT_EQ(nated[0].first, addr(10));
  EXPECT_EQ(nated[0].second, 2u);
  EXPECT_TRUE(crawler.discovered().at(addr(10)).is_nated());
}

// One client at .10 changed its port: the old endpoint circulates in the
// bootstrap's table but is dead. Two ports are seen, but only one answers —
// the paper's stale-information case. The IP must NOT be flagged.
TEST(Crawler, StalePortIsNotMistakenForNat) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint live{addr(10), 2000};
  const net::Endpoint stale{addr(10), 700};  // unbound: never answers
  harness.add_peer(bootstrap,
                   {make_id(1), {{live, make_id(10)}, {stale, make_id(10)}}});
  harness.add_peer(live, {make_id(10), {}});

  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_TRUE(crawler.nated().empty());
  const IpEvidence& evidence = crawler.discovered().at(addr(10));
  EXPECT_EQ(evidence.ports.size(), 2u);
  EXPECT_FALSE(evidence.is_nated());
  EXPECT_GT(evidence.verification_rounds, 0u);
}

// Two ports answering with the SAME node_id (one client double-mapped) do
// not satisfy the distinct-id rule.
TEST(Crawler, SameNodeIdOnTwoPortsIsOneUser) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  harness.add_peer(bootstrap,
                   {make_id(1), {{a, make_id(10)}, {b, make_id(10)}}});
  harness.add_peer(a, {make_id(10), {}});
  harness.add_peer(b, {make_id(10), {}});

  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_TRUE(crawler.nated().empty());
}

// A single-port IP is never even verified.
TEST(Crawler, SinglePortIpIsNotVerified) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint solo{addr(10), 2000};
  harness.add_peer(bootstrap, {make_id(1), {{solo, make_id(10)}}});
  harness.add_peer(solo, {make_id(10), {}});

  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_TRUE(crawler.nated().empty());
  EXPECT_EQ(crawler.discovered().at(addr(10)).verification_rounds, 0u);
}

// Restriction: endpoints outside the allowed /24s are skipped entirely.
TEST(Crawler, RestrictionSkipsOutsideAddresses) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint inside{addr(10), 2000};
  const net::Endpoint outside{addr(1u << 24), 2000};
  harness.add_peer(bootstrap, {make_id(1), {{inside, make_id(10)},
                                            {outside, make_id(11)}}});
  harness.add_peer(inside, {make_id(10), {}});
  harness.add_peer(outside, {make_id(11), {}});

  CrawlerConfig config;
  config.restricted = true;
  config.restrict_to.insert(net::Ipv4Prefix::slash24_of(addr(10)));
  Crawler& crawler = harness.crawl(bootstrap, 1, std::move(config));
  EXPECT_TRUE(crawler.discovered().contains(addr(10)));
  EXPECT_FALSE(crawler.discovered().contains(addr(1u << 24)));
  EXPECT_GT(crawler.stats().endpoints_skipped_restricted, 0u);
}

// The per-IP cooldown bounds contact frequency: with a 20-minute cooldown,
// one IP sees at most ~3 verification bursts per hour.
TEST(Crawler, CooldownLimitsContactRate) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  harness.add_peer(bootstrap,
                   {make_id(1), {{a, make_id(10)}, {b, make_id(11)}}});
  harness.add_peer(a, {make_id(10), {{b, make_id(11)}}});
  harness.add_peer(b, {make_id(11), {{a, make_id(10)}}});

  Crawler& crawler = harness.crawl(bootstrap, 1);
  // 1 day / 20 min = 72 contact opportunities; the crawler may use fewer
  // (hourly re-pings) but must never exceed the cooldown bound.
  EXPECT_LE(crawler.discovered().at(addr(10)).verification_rounds, 73u);
  EXPECT_GT(crawler.discovered().at(addr(10)).verification_rounds, 10u);
}

// The lower bound never exceeds the true number of scripted clients.
TEST(Crawler, UserCountIsALowerBound) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  std::vector<NodeContact> contacts;
  for (std::uint16_t i = 0; i < 5; ++i) {
    const net::Endpoint endpoint{addr(10), static_cast<std::uint16_t>(2000 + i)};
    contacts.push_back({endpoint, make_id(10u + i)});
  }
  harness.add_peer(bootstrap, {make_id(1), contacts});
  for (std::uint16_t i = 0; i < 5; ++i) {
    harness.add_peer({addr(10), static_cast<std::uint16_t>(2000 + i)},
                     {make_id(10u + i), {}});
  }
  Crawler& crawler = harness.crawl(bootstrap, 1);
  const auto nated = crawler.nated();
  ASSERT_EQ(nated.size(), 1u);
  EXPECT_LE(nated[0].second, 5u);
  EXPECT_GE(nated[0].second, 2u);
}

// Lossy transport: detection still succeeds thanks to hourly re-pings.
TEST(Crawler, SurvivesHeavyLossViaRepings) {
  CrawlerHarness harness;
  // Rebuild the transport with 40% loss each way.
  sim::TransportConfig lossy;
  lossy.request_loss = 0.4;
  lossy.response_loss = 0.4;
  lossy.min_delay = net::Duration::seconds(1);
  lossy.max_delay = net::Duration::seconds(2);
  sim::Transport<DhtRequest, DhtResponse> transport(harness.events_,
                                                    net::Rng(3), lossy);
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  auto bind_scripted = [&](const net::Endpoint& endpoint, ScriptedPeer peer) {
    transport.bind(endpoint, [peer = std::move(peer)](
                                 const net::Endpoint&, const DhtRequest& request)
                                 -> std::optional<DhtResponse> {
      DhtResponse response;
      response.responder_id = peer.id;
      if (std::holds_alternative<GetNodesRequest>(request)) {
        response.neighbors = peer.neighbors;
      }
      return response;
    });
  };
  bind_scripted(bootstrap, {make_id(1), {{a, make_id(10)}, {b, make_id(11)}}});
  bind_scripted(a, {make_id(10), {{b, make_id(11)}}});
  bind_scripted(b, {make_id(11), {{a, make_id(10)}}});

  CrawlerConfig config;
  config.seed = 5;
  Crawler crawler(transport, harness.events_, bootstrap, config);
  crawler.start({net::SimTime(0), net::SimTime(2 * 86400)});
  harness.events_.run_until(net::SimTime(2 * 86400) + net::Duration::minutes(5));
  const auto nated = crawler.nated();
  ASSERT_EQ(nated.size(), 1u);
  EXPECT_EQ(nated[0].first, addr(10));
  EXPECT_LT(crawler.stats().ping_response_rate(), 0.7);
}

// Bootstrap blackholed for the first 10 minutes of the crawl: the watchdog's
// backed-off retries must eventually get through and the crawl proceed.
TEST(Crawler, RecoversFromBootstrapOutage) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint peer{addr(10), 2000};
  harness.add_peer(bootstrap, {make_id(1), {{peer, make_id(10)}}});
  harness.add_peer(peer, {make_id(10), {}});

  sim::FaultPlan plan;
  plan.seed = 9;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kBootstrapOutage,
      net::TimeWindow{net::SimTime(0), net::SimTime(600)}, 1.0, 1});
  sim::FaultInjector injector(plan);
  injector.designate_bootstrap(bootstrap);
  harness.transport_.attach_faults(&injector);

  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_GT(injector.stats().bootstrap_blackholes, 0u);
  EXPECT_GT(crawler.stats().bootstrap_retries, 0u);
  EXPECT_EQ(crawler.stats().bootstrap_recoveries, 1u);
  EXPECT_TRUE(crawler.discovered().contains(addr(10)));
}

// A permanent outage exhausts the retry budget without recovery — and
// without the watchdog spinning forever.
TEST(Crawler, BootstrapRetriesAreBounded) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  harness.add_peer(bootstrap, {make_id(1), {}});

  sim::FaultPlan plan;
  plan.seed = 9;
  plan.episodes.push_back(sim::FaultEpisode{
      sim::FaultKind::kBootstrapOutage,
      net::TimeWindow{net::SimTime(0), net::SimTime(86400)}, 1.0, 1});
  sim::FaultInjector injector(plan);
  injector.designate_bootstrap(bootstrap);
  harness.transport_.attach_faults(&injector);

  CrawlerConfig config;
  Crawler& crawler = harness.crawl(bootstrap, 1, config);
  EXPECT_EQ(crawler.stats().bootstrap_retries, config.bootstrap_max_retries);
  EXPECT_EQ(crawler.stats().bootstrap_recoveries, 0u);
  EXPECT_TRUE(crawler.discovered().empty());
}

// Fault-free runs never touch the retry machinery: its counters must stay
// zero so the degradation report's "degraded()" stays false.
TEST(Crawler, NoRetriesWithoutFaults) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint peer{addr(10), 2000};
  harness.add_peer(bootstrap, {make_id(1), {{peer, make_id(10)}}});
  harness.add_peer(peer, {make_id(10), {}});
  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_EQ(crawler.stats().bootstrap_retries, 0u);
  EXPECT_EQ(crawler.stats().bootstrap_recoveries, 0u);
  EXPECT_EQ(crawler.stats().verification_retries, 0u);
  EXPECT_EQ(crawler.stats().verification_recoveries, 0u);
}

// Two advertised ports on one IP, both dead until minute 90: the zero-reply
// verification rounds are retried, and once the clients come alive a later
// round both recovers the address and completes the NAT verdict.
TEST(Crawler, RetriesZeroReplyVerificationRounds) {
  CrawlerHarness harness;
  const net::Endpoint bootstrap{addr(1), 6881};
  const net::Endpoint a{addr(10), 2000};
  const net::Endpoint b{addr(10), 3000};
  harness.add_peer(bootstrap,
                   {make_id(1), {{a, make_id(10)}, {b, make_id(11)}}});
  harness.events_.schedule_after(net::Duration::minutes(90), [&] {
    harness.add_peer(a, {make_id(10), {}});
    harness.add_peer(b, {make_id(11), {}});
  });

  Crawler& crawler = harness.crawl(bootstrap, 1);
  EXPECT_GT(crawler.stats().verification_retries, 0u);
  EXPECT_GT(crawler.stats().verification_recoveries, 0u);
  const auto nated = crawler.nated();
  ASSERT_EQ(nated.size(), 1u);
  EXPECT_EQ(nated[0].first, addr(10));
}

}  // namespace
}  // namespace reuse::crawler
