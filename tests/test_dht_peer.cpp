// Focused DhtPeer unit tests (behaviour contracts the network tests only
// exercise in aggregate).
#include "dht/peer.h"

#include <gtest/gtest.h>

#include <unordered_set>

#include "netbase/rng.h"

namespace reuse::dht {
namespace {

net::Endpoint ep(std::uint32_t host, std::uint16_t port) {
  return net::Endpoint{net::Ipv4Address(host), port};
}

PeerBehavior always_on() {
  PeerBehavior behavior;
  behavior.always_on_fraction = 1.0;
  return behavior;
}

PeerBehavior never_always_on() {
  PeerBehavior behavior;
  behavior.always_on_fraction = 0.0;
  behavior.duty_min = 0.25;
  behavior.duty_max = 0.5;
  return behavior;
}

TEST(DhtPeer, ConstructionIsDeterministicPerSeed) {
  const DhtPeer a(1, 42, ep(1, 1000), always_on());
  const DhtPeer b(1, 42, ep(1, 1000), always_on());
  const DhtPeer c(1, 43, ep(1, 1000), always_on());
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.version(), b.version());
  EXPECT_NE(a.id(), c.id());
}

TEST(DhtPeer, AlwaysOnPeersAnswerAtAnyTime) {
  const DhtPeer peer(1, 7, ep(1, 1000), always_on());
  for (int hour = 0; hour < 72; hour += 5) {
    EXPECT_TRUE(peer.online(net::SimTime(hour * 3600)));
    const auto response = peer.handle(BtPingRequest{}, net::SimTime(hour * 3600));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(response->responder_id, peer.id());
    EXPECT_TRUE(response->neighbors.empty());  // pings carry no neighbours
  }
}

TEST(DhtPeer, DutyCyclePeersAreSometimesOffline) {
  // With duty in [0.25, 0.5], every peer must be offline for most of a day.
  int online_hours = 0;
  const DhtPeer peer(1, 99, ep(1, 1000), never_always_on());
  for (int hour = 0; hour < 24; ++hour) {
    online_hours += peer.online(net::SimTime(hour * 3600));
    if (!peer.online(net::SimTime(hour * 3600))) {
      EXPECT_FALSE(peer.handle(BtPingRequest{}, net::SimTime(hour * 3600)));
    }
  }
  EXPECT_GT(online_hours, 0);
  EXPECT_LT(online_hours, 16);
}

TEST(DhtPeer, OnlinePatternRepeatsDaily) {
  const DhtPeer peer(1, 17, ep(1, 1000), never_always_on());
  for (int hour = 0; hour < 24; ++hour) {
    EXPECT_EQ(peer.online(net::SimTime(hour * 3600)),
              peer.online(net::SimTime((hour + 24) * 3600)))
        << "hour " << hour;
  }
}

TEST(DhtPeer, RebootRegeneratesNodeIdAndCountsIds) {
  DhtPeer peer(1, 7, ep(1, 1000), always_on());
  std::unordered_set<NodeId> ids{peer.id()};
  EXPECT_EQ(peer.ids_used(), 1u);
  for (std::uint64_t nonce = 1; nonce <= 20; ++nonce) {
    peer.reboot(nonce);
    EXPECT_TRUE(ids.insert(peer.id()).second) << "node_id reused after reboot";
  }
  EXPECT_EQ(peer.ids_used(), 21u);
}

TEST(DhtPeer, GetNodesReturnsUpToEightClosest) {
  DhtPeer peer(1, 7, ep(1, 1000), always_on());
  net::Rng rng(3);
  for (std::uint32_t i = 0; i < 30; ++i) {
    std::array<std::uint32_t, 5> words{};
    for (auto& w : words) w = static_cast<std::uint32_t>(rng());
    peer.table().insert({ep(100 + i, 2000), NodeId(words)});
  }
  const auto response =
      peer.handle(GetNodesRequest{NodeId{}}, net::SimTime(0));
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->neighbors.size(), kNeighborsPerReply);
}

TEST(DhtPeer, SetEndpointOnlyChangesEndpoint) {
  DhtPeer peer(1, 7, ep(1, 1000), always_on());
  const NodeId before = peer.id();
  peer.set_endpoint(ep(1, 2000));
  EXPECT_EQ(peer.endpoint(), ep(1, 2000));
  EXPECT_EQ(peer.id(), before);
}

TEST(DhtPeer, VersionIsARealClientTag) {
  const DhtPeer peer(1, 7, ep(1, 1000), always_on());
  EXPECT_FALSE(peer.version().empty());
  EXPECT_LE(peer.version().size(), 8u);
}

}  // namespace
}  // namespace reuse::dht
