// Cache-hit runs must be indistinguishable from fresh simulation: the
// figures every bench binary prints are derived from the cached crawl and
// presence store, so any drift in the cache round-trip silently skews the
// reproduction targets. These tests compare the Figure 4 (detection funnel)
// and Figure 7 (listing durations) inputs between a fresh Scenario, the
// cache-miss run that wrote the file, and the cache-hit run that read it —
// and prove that distinct configs neither share nor evict a cache file.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "analysis/cache.h"
#include "analysis/impact.h"

namespace reuse {
namespace {

analysis::ScenarioConfig tiny_config(std::uint64_t seed = 5) {
  analysis::ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 30;
  config.crawl_days = 1;
  config.fleet.probe_count = 100;
  config.run_census = false;
  config.finalize();
  return config;
}

/// The Figure 4 numbers: funnel stage joins against the blocklisted set.
struct Fig4 {
  std::size_t bt_ips = 0;
  std::size_t nated_ips = 0;
  std::size_t nated_blocklisted = 0;
  std::size_t stages[4] = {0, 0, 0, 0};

  friend bool operator==(const Fig4&, const Fig4&) = default;
};

template <typename ScenarioLike>
Fig4 fig4_of(const ScenarioLike& s) {
  Fig4 out;
  out.bt_ips = s.crawl.evidence.size();
  out.nated_ips = s.crawl.nated.size();
  const blocklist::SnapshotStore& store = s.ecosystem.store;
  for (const auto& [address, users] : s.crawl.nated) {
    out.nated_blocklisted += store.contains_address(address);
  }
  const net::PrefixSet* footprints[4] = {
      &s.pipeline.all_probe_prefixes, &s.pipeline.single_as_change_prefixes,
      &s.pipeline.above_knee_prefixes, &s.pipeline.dynamic_prefixes};
  for (int stage = 0; stage < 4; ++stage) {
    for (const net::Ipv4Address address : store.sorted_addresses()) {
      out.stages[stage] += footprints[stage]->contains_address(address);
    }
  }
  return out;
}

/// The Figure 7 inputs, sorted for order-insensitive exact comparison.
template <typename ScenarioLike>
analysis::ListingDurations fig7_of(const ScenarioLike& s) {
  analysis::ListingDurations durations = analysis::compute_listing_durations(
      s.ecosystem.store, s.crawl.nated_set, s.pipeline.dynamic_prefixes);
  std::sort(durations.all_days.begin(), durations.all_days.end());
  std::sort(durations.nated_days.begin(), durations.nated_days.end());
  std::sort(durations.dynamic_days.begin(), durations.dynamic_days.end());
  return durations;
}

TEST(CacheEquivalence, CacheHitReproducesFreshScenarioFigures) {
  const auto config = tiny_config();
  const std::string path = "test_cache_equivalence_roundtrip.cache";
  std::remove(path.c_str());

  const analysis::Scenario fresh = analysis::run_scenario(config);
  const analysis::CachedScenario miss =
      analysis::run_scenario_cached(config, path);
  ASSERT_FALSE(miss.cache_hit);
  const analysis::CachedScenario hit =
      analysis::run_scenario_cached(config, path);
  ASSERT_TRUE(hit.cache_hit);

  const Fig4 fresh_fig4 = fig4_of(fresh);
  EXPECT_EQ(fig4_of(miss), fresh_fig4);
  EXPECT_EQ(fig4_of(hit), fresh_fig4);
  EXPECT_GT(fresh_fig4.bt_ips, 0u);

  const analysis::ListingDurations fresh_fig7 = fig7_of(fresh);
  const analysis::ListingDurations hit_fig7 = fig7_of(hit);
  EXPECT_EQ(hit_fig7.all_days, fresh_fig7.all_days);
  EXPECT_EQ(hit_fig7.nated_days, fresh_fig7.nated_days);
  EXPECT_EQ(hit_fig7.dynamic_days, fresh_fig7.dynamic_days);
  EXPECT_FALSE(fresh_fig7.all_days.empty());

  // The exact nated replay the benches iterate in order.
  EXPECT_EQ(hit.crawl.nated, fresh.crawl.nated);

  std::remove(path.c_str());
}

TEST(CacheEquivalence, DistinctConfigsNeverShareOrEvict) {
  // Route default cache paths into a private directory for this test.
  const std::filesystem::path dir = "test_cache_equivalence_dir";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(::setenv("REUSE_CACHE_DIR", dir.string().c_str(), 1), 0);

  const auto config_a = tiny_config();
  auto config_b = tiny_config();
  config_b.ecosystem.reobservation_extend_rate += 0.05;
  config_b.finalize();
  ASSERT_NE(analysis::default_cache_path(config_a),
            analysis::default_cache_path(config_b));

  // Miss, miss: each config writes its own file.
  EXPECT_FALSE(analysis::run_scenario_cached(config_a).cache_hit);
  EXPECT_FALSE(analysis::run_scenario_cached(config_b).cache_hit);
  // Hit, hit: neither run evicted the other (the old seed-keyed path made
  // these two thrash-overwrite each other forever).
  EXPECT_TRUE(analysis::run_scenario_cached(config_a).cache_hit);
  EXPECT_TRUE(analysis::run_scenario_cached(config_b).cache_hit);
  // And neither file loads under the other's config (no false sharing).
  EXPECT_FALSE(analysis::load_scenario_cache(
                   analysis::default_cache_path(config_a), config_b)
                   .has_value());
  EXPECT_FALSE(analysis::load_scenario_cache(
                   analysis::default_cache_path(config_b), config_a)
                   .has_value());

  ASSERT_EQ(::unsetenv("REUSE_CACHE_DIR"), 0);
  std::filesystem::remove_all(dir);
}

// Preflight: an unusable cache path must be diagnosed before any simulation
// work is spent. (No chmod-based cases here — the test user may be root, for
// whom permission bits are advisory.)
TEST(CachePreflight, DirectoryAsCacheFileIsRejected) {
  const std::filesystem::path dir = "test_cache_preflight_dir";
  std::filesystem::create_directories(dir);
  const auto error = analysis::preflight_cache_path(dir.string());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("directory"), std::string::npos) << *error;
  std::filesystem::remove_all(dir);
}

TEST(CachePreflight, MissingParentDirectoryIsRejected) {
  const auto error = analysis::preflight_cache_path(
      "test_cache_preflight_no_such_dir/sub/file.cache");
  ASSERT_TRUE(error.has_value());
}

TEST(CachePreflight, FileAsParentDirectoryIsRejected) {
  const std::string parent = "test_cache_preflight_file_parent";
  {
    std::ofstream os(parent);
    os << "not a directory";
  }
  const auto error =
      analysis::preflight_cache_path(parent + "/file.cache");
  ASSERT_TRUE(error.has_value());
  std::remove(parent.c_str());
}

TEST(CachePreflight, NewFileInWritableDirectoryIsAccepted) {
  const std::filesystem::path dir = "test_cache_preflight_ok_dir";
  std::filesystem::create_directories(dir);
  EXPECT_FALSE(
      analysis::preflight_cache_path((dir / "new.cache").string()).has_value());
  std::filesystem::remove_all(dir);
}

TEST(CachePreflight, ExistingReadableFileIsAccepted) {
  const std::string path = "test_cache_preflight_existing.cache";
  {
    std::ofstream os(path, std::ios::binary);
    os << "stale bytes are fine; preflight only checks access";
  }
  EXPECT_FALSE(analysis::preflight_cache_path(path).has_value());
  std::remove(path.c_str());
}

TEST(CachePreflight, RelativePathInCwdIsAccepted) {
  // The CLI default (no $REUSE_CACHE_DIR) lands in the working directory.
  EXPECT_FALSE(
      analysis::preflight_cache_path("test_cache_preflight_plain.cache")
          .has_value());
}

}  // namespace
}  // namespace reuse
