#include "simnet/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace reuse::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue events;
  std::vector<int> order;
  events.schedule_at(net::SimTime(30), [&] { order.push_back(3); });
  events.schedule_at(net::SimTime(10), [&] { order.push_back(1); });
  events.schedule_at(net::SimTime(20), [&] { order.push_back(2); });
  events.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(events.now(), net::SimTime(30));
  EXPECT_EQ(events.executed(), 3u);
}

TEST(EventQueue, TiesBreakInSchedulingOrder) {
  EventQueue events;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    events.schedule_at(net::SimTime(5), [&order, i] { order.push_back(i); });
  }
  events.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime) {
  EventQueue events;
  net::SimTime inner_fired;
  events.schedule_at(net::SimTime(100), [&] {
    events.schedule_after(net::Duration::seconds(50),
                          [&] { inner_fired = events.now(); });
  });
  events.run_all();
  EXPECT_EQ(inner_fired, net::SimTime(150));
}

TEST(EventQueue, RunUntilStopsBeforeDeadlineAndAdvancesClock) {
  EventQueue events;
  int fired = 0;
  events.schedule_at(net::SimTime(10), [&] { ++fired; });
  events.schedule_at(net::SimTime(20), [&] { ++fired; });
  events.run_until(net::SimTime(20));  // events strictly before 20
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(events.now(), net::SimTime(20));
  EXPECT_EQ(events.pending(), 1u);
  events.run_until(net::SimTime(21));
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue events;
  events.schedule_at(net::SimTime(100), [] {});
  events.run_all();
  EXPECT_THROW(events.schedule_at(net::SimTime(50), [] {}),
               std::invalid_argument);
}

TEST(EventQueue, EventsCanCascade) {
  EventQueue events;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) {
      events.schedule_after(net::Duration::seconds(1), recurse);
    }
  };
  events.schedule_at(net::SimTime(0), recurse);
  events.run_all();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(events.now(), net::SimTime(99));
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue events;
  EXPECT_FALSE(events.run_next());
}

}  // namespace
}  // namespace reuse::sim
