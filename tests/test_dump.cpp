#include "blocklist/dump.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

namespace reuse::blocklist {
namespace {

net::Ipv4Address addr(const char* text) { return *net::Ipv4Address::parse(text); }

class DumpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dump_test_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  static std::vector<BlocklistInfo> catalogue() {
    BlocklistInfo a;
    a.id = 1;
    a.name = "alpha";
    BlocklistInfo b;
    b.id = 2;
    b.name = "beta";
    return {a, b};
  }

  std::filesystem::path dir_;
};

TEST_F(DumpTest, RoundTripPreservesPresence) {
  SnapshotStore store;
  store.record(1, addr("1.0.0.1"), 0);
  store.record(1, addr("1.0.0.1"), 1);
  store.record(1, addr("1.0.0.2"), 1);
  store.record(2, addr("2.0.0.1"), 0);
  store.record(2, addr("2.0.0.1"), 3);  // gap: days 0 and 3

  const auto written = write_daily_dumps(store, catalogue(), dir_);
  ASSERT_TRUE(written.has_value());
  EXPECT_EQ(written->files, 4u);  // (d0,alpha) (d1,alpha) (d0,beta) (d3,beta)
  EXPECT_EQ(written->entries, 5u);

  SnapshotStore reloaded;
  const auto read = read_daily_dumps(dir_, catalogue(), reloaded);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->entries, 5u);
  EXPECT_EQ(reloaded.listing_count(), store.listing_count());
  store.for_each_listing([&](ListId list, net::Ipv4Address address,
                             const net::IntervalSet& presence) {
    const net::IntervalSet other = reloaded.presence(list, address);
    ASSERT_FALSE(other.empty());
    EXPECT_EQ(other.intervals(), presence.intervals());
  });
}

TEST_F(DumpTest, LayoutIsOneFilePerListAndDay) {
  SnapshotStore store;
  store.record(1, addr("1.0.0.1"), 7);
  ASSERT_TRUE(write_daily_dumps(store, catalogue(), dir_).has_value());
  EXPECT_TRUE(std::filesystem::exists(dir_ / "7" / "alpha.txt"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "7" / "beta.txt"));
}

TEST_F(DumpTest, UnknownListsAndGarbageAreSkippedOnImport) {
  std::filesystem::create_directories(dir_ / "0");
  std::filesystem::create_directories(dir_ / "not-a-day");
  {
    std::ofstream os(dir_ / "0" / "alpha.txt");
    os << "1.0.0.1\njunk line\n";
  }
  {
    std::ofstream os(dir_ / "0" / "unknown-list.txt");
    os << "9.9.9.9\n";
  }
  {
    std::ofstream os(dir_ / "not-a-day" / "alpha.txt");
    os << "8.8.8.8\n";
  }
  SnapshotStore store;
  const auto stats = read_daily_dumps(dir_, catalogue(), store);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->files, 1u);
  EXPECT_EQ(stats->entries, 1u);
  EXPECT_EQ(stats->skipped_lines, 1u);
  EXPECT_TRUE(store.has_listing(1, addr("1.0.0.1")));
  EXPECT_EQ(store.address_count(), 1u);
}

TEST_F(DumpTest, SkippedLinesAreAttributedPerList) {
  // Two rotting feeds with different amounts of garbage: the per-list
  // breakdown must attribute each malformed line to the list whose file it
  // sat in, and the breakdown must sum to the aggregate skipped_lines.
  std::filesystem::create_directories(dir_ / "0");
  std::filesystem::create_directories(dir_ / "1");
  {
    std::ofstream os(dir_ / "0" / "alpha.txt");
    os << "1.0.0.1\ngarbage one\ngarbage two\n";
  }
  {
    std::ofstream os(dir_ / "0" / "beta.txt");
    os << "2.0.0.1\nbroken\n";
  }
  {
    std::ofstream os(dir_ / "1" / "alpha.txt");
    os << "also broken\n1.0.0.2\n";
  }
  SnapshotStore store;
  const auto stats = read_daily_dumps(dir_, catalogue(), store);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->skipped_lines, 4u);
  ASSERT_EQ(stats->skipped_by_list.size(), 2u);
  EXPECT_EQ(stats->skipped_by_list.at(1), 3u);  // alpha: days 0 and 1
  EXPECT_EQ(stats->skipped_by_list.at(2), 1u);  // beta
  std::size_t per_list_total = 0;
  for (const auto& [list, skipped] : stats->skipped_by_list) {
    per_list_total += skipped;
  }
  EXPECT_EQ(per_list_total, stats->skipped_lines);
}

TEST_F(DumpTest, CleanListsDoNotAppearInTheSkipBreakdown) {
  std::filesystem::create_directories(dir_ / "0");
  {
    std::ofstream os(dir_ / "0" / "alpha.txt");
    os << "1.0.0.1\n";
  }
  {
    std::ofstream os(dir_ / "0" / "beta.txt");
    os << "nonsense\n";
  }
  SnapshotStore store;
  const auto stats = read_daily_dumps(dir_, catalogue(), store);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->skipped_lines, 1u);
  EXPECT_EQ(stats->skipped_by_list.count(1), 0u);  // alpha was clean
  EXPECT_EQ(stats->skipped_by_list.at(2), 1u);
}

TEST_F(DumpTest, MissingDirectoryIsAnError) {
  SnapshotStore store;
  EXPECT_FALSE(read_daily_dumps(dir_ / "nope", catalogue(), store).has_value());
}

TEST_F(DumpTest, EmptyStoreWritesNothing) {
  SnapshotStore store;
  const auto stats = write_daily_dumps(store, catalogue(), dir_);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->files, 0u);
}

}  // namespace
}  // namespace reuse::blocklist
