#include "analysis/greylist.h"

#include <gtest/gtest.h>

namespace reuse::analysis {
namespace {

net::Ipv4Address addr(const char* text) { return *net::Ipv4Address::parse(text); }

TEST(ReusedAddressList, EmptyStoreYieldsEmptyList) {
  blocklist::SnapshotStore store;
  EXPECT_TRUE(build_reused_address_list(store, {}, {}).empty());
}

TEST(ReusedAddressList, OnlyReusedBlocklistedAddressesAppear) {
  blocklist::SnapshotStore store;
  store.record(1, addr("1.0.0.1"), 0);  // NATed
  store.record(1, addr("2.0.0.1"), 0);  // dynamic (via prefix)
  store.record(1, addr("3.0.0.1"), 0);  // neither
  std::unordered_set<net::Ipv4Address> nated{addr("1.0.0.1"),
                                             addr("9.0.0.9")};  // 9… unlisted
  net::PrefixSet dynamic;
  dynamic.insert(*net::Ipv4Prefix::parse("2.0.0.0/24"));

  const auto reused = build_reused_address_list(store, nated, dynamic);
  ASSERT_EQ(reused.size(), 2u);
  EXPECT_EQ(reused[0].address, addr("1.0.0.1"));
  EXPECT_TRUE(reused[0].nated);
  EXPECT_FALSE(reused[0].dynamic);
  EXPECT_EQ(reused[1].address, addr("2.0.0.1"));
  EXPECT_FALSE(reused[1].nated);
  EXPECT_TRUE(reused[1].dynamic);
}

TEST(ReusedAddressList, SortedByAddress) {
  blocklist::SnapshotStore store;
  store.record(1, addr("9.0.0.1"), 0);
  store.record(1, addr("1.0.0.1"), 0);
  store.record(1, addr("5.0.0.1"), 0);
  std::unordered_set<net::Ipv4Address> nated{addr("9.0.0.1"), addr("1.0.0.1"),
                                             addr("5.0.0.1")};
  const auto reused = build_reused_address_list(store, nated, {});
  ASSERT_EQ(reused.size(), 3u);
  EXPECT_LT(reused[0].address, reused[1].address);
  EXPECT_LT(reused[1].address, reused[2].address);
}

TEST(ReusedAddressList, DuplicateRecordsCollapseToOneEntry) {
  blocklist::SnapshotStore store;
  // The same address recorded on several lists and several days must still
  // yield exactly one reused-list entry.
  store.record(1, addr("1.0.0.1"), 0);
  store.record(1, addr("1.0.0.1"), 3);
  store.record(2, addr("1.0.0.1"), 1);
  std::unordered_set<net::Ipv4Address> nated{addr("1.0.0.1")};
  const auto reused = build_reused_address_list(store, nated, {});
  ASSERT_EQ(reused.size(), 1u);
  EXPECT_EQ(reused[0].address, addr("1.0.0.1"));
}

TEST(ReusedAddressList, NatedAndDynamicSetsBothFlagsOnOneEntry) {
  blocklist::SnapshotStore store;
  store.record(1, addr("2.0.0.1"), 0);
  store.record(2, addr("2.0.0.1"), 0);  // listed twice, reused both ways
  std::unordered_set<net::Ipv4Address> nated{addr("2.0.0.1")};
  net::PrefixSet dynamic;
  dynamic.insert(*net::Ipv4Prefix::parse("2.0.0.0/24"));
  const auto reused = build_reused_address_list(store, nated, dynamic);
  ASSERT_EQ(reused.size(), 1u);
  EXPECT_TRUE(reused[0].nated);
  EXPECT_TRUE(reused[0].dynamic);
}

TEST(ReusedAddressList, OutputIsSortedAndDeduplicated) {
  blocklist::SnapshotStore store;
  std::unordered_set<net::Ipv4Address> nated;
  // Enough entries to make accidental sortedness implausible.
  for (std::uint32_t i = 0; i < 64; ++i) {
    const net::Ipv4Address address((i * 2654435761u) | 0x01000000u);
    store.record(1 + (i % 3), address, static_cast<std::int64_t>(i % 5));
    store.record(1 + ((i + 1) % 3), address, 0);  // duplicate listing
    nated.insert(address);
  }
  const auto reused = build_reused_address_list(store, nated, {});
  ASSERT_EQ(reused.size(), 64u);
  for (std::size_t i = 1; i < reused.size(); ++i) {
    EXPECT_LT(reused[i - 1].address, reused[i].address);  // sorted, no dupes
  }
}

TEST(GreylistSplit, EmptySnapshotWithKnowledgeYieldsNothing) {
  std::vector<ReusedAddressEntry> reused;
  reused.push_back({addr("1.0.0.1"), true, false});
  const GreylistSplit split = split_for_greylisting({}, reused);
  EXPECT_TRUE(split.block.empty());
  EXPECT_TRUE(split.greylist.empty());
}

TEST(GreylistSplit, DuplicateSnapshotEntriesStayInTheirClass) {
  std::vector<ReusedAddressEntry> reused;
  reused.push_back({addr("1.0.0.1"), false, true});
  const std::vector<net::Ipv4Address> snapshot{
      addr("1.0.0.1"), addr("2.0.0.1"), addr("1.0.0.1"), addr("2.0.0.1")};
  const GreylistSplit split = split_for_greylisting(snapshot, reused);
  // Each occurrence is classified independently; the partition stays exact.
  EXPECT_EQ(split.greylist.size(), 2u);
  EXPECT_EQ(split.block.size(), 2u);
  EXPECT_EQ(split.block.size() + split.greylist.size(), snapshot.size());
}

TEST(GreylistSplit, PartitionIsCompleteAndDisjoint) {
  std::vector<ReusedAddressEntry> reused;
  reused.push_back({addr("1.0.0.1"), true, false});
  reused.push_back({addr("2.0.0.1"), false, true});
  const std::vector<net::Ipv4Address> snapshot{
      addr("1.0.0.1"), addr("2.0.0.1"), addr("3.0.0.1"), addr("4.0.0.1")};
  const GreylistSplit split = split_for_greylisting(snapshot, reused);
  EXPECT_EQ(split.block.size() + split.greylist.size(), snapshot.size());
  EXPECT_EQ(split.greylist.size(), 2u);
  for (const auto& address : split.block) {
    for (const auto& grey : split.greylist) {
      EXPECT_NE(address, grey);
    }
  }
}

TEST(GreylistSplit, EmptyInputs) {
  const GreylistSplit nothing = split_for_greylisting({}, {});
  EXPECT_TRUE(nothing.block.empty());
  EXPECT_TRUE(nothing.greylist.empty());

  const GreylistSplit no_knowledge =
      split_for_greylisting({addr("1.0.0.1")}, {});
  EXPECT_EQ(no_knowledge.block.size(), 1u);
  EXPECT_TRUE(no_knowledge.greylist.empty());
}

TEST(GreylistSplit, PreservesSnapshotOrderWithinClasses) {
  std::vector<ReusedAddressEntry> reused;
  reused.push_back({addr("2.0.0.1"), true, false});
  const std::vector<net::Ipv4Address> snapshot{
      addr("9.0.0.1"), addr("2.0.0.1"), addr("1.0.0.1")};
  const GreylistSplit split = split_for_greylisting(snapshot, reused);
  ASSERT_EQ(split.block.size(), 2u);
  EXPECT_EQ(split.block[0], addr("9.0.0.1"));
  EXPECT_EQ(split.block[1], addr("1.0.0.1"));
}

}  // namespace
}  // namespace reuse::analysis
