#include "netbase/ipv4.h"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "netbase/rng.h"

namespace reuse::net {
namespace {

TEST(Ipv4Address, ParsesDottedQuad) {
  const auto address = Ipv4Address::parse("192.0.2.1");
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(address->value(), 0xC0000201u);
  EXPECT_EQ(address->octet(0), 192);
  EXPECT_EQ(address->octet(1), 0);
  EXPECT_EQ(address->octet(2), 2);
  EXPECT_EQ(address->octet(3), 1);
}

TEST(Ipv4Address, ParsesBoundaryValues) {
  EXPECT_EQ(Ipv4Address::parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Address, RejectsMalformedInput) {
  EXPECT_FALSE(Ipv4Address::parse(""));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4.5"));
  EXPECT_FALSE(Ipv4Address::parse("256.0.0.1"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.x"));
  EXPECT_FALSE(Ipv4Address::parse("1..2.3"));
  EXPECT_FALSE(Ipv4Address::parse(" 1.2.3.4"));
  EXPECT_FALSE(Ipv4Address::parse("1.2.3.4 "));
  EXPECT_FALSE(Ipv4Address::parse("01.2.3.4"));  // leading zero
  EXPECT_FALSE(Ipv4Address::parse("-1.2.3.4"));
}

TEST(Ipv4Address, RoundTripsThroughString) {
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    const Ipv4Address address(static_cast<std::uint32_t>(rng()));
    const auto reparsed = Ipv4Address::parse(address.to_string());
    ASSERT_TRUE(reparsed.has_value()) << address.to_string();
    EXPECT_EQ(*reparsed, address);
  }
}

TEST(Ipv4Address, OrdersNumerically) {
  EXPECT_LT(*Ipv4Address::parse("1.2.3.4"), *Ipv4Address::parse("1.2.3.5"));
  EXPECT_LT(*Ipv4Address::parse("9.255.255.255"), *Ipv4Address::parse("10.0.0.0"));
}

TEST(Ipv4Address, StreamsAsDottedQuad) {
  std::ostringstream os;
  os << Ipv4Address::from_octets(10, 20, 30, 40);
  EXPECT_EQ(os.str(), "10.20.30.40");
}

TEST(Ipv4Prefix, MasksHostBits) {
  const Ipv4Prefix prefix(*Ipv4Address::parse("192.0.2.77"), 24);
  EXPECT_EQ(prefix.network().to_string(), "192.0.2.0");
  EXPECT_EQ(prefix.length(), 24);
  EXPECT_EQ(prefix.to_string(), "192.0.2.0/24");
}

TEST(Ipv4Prefix, ParsesCidrAndBareAddress) {
  const auto cidr = Ipv4Prefix::parse("10.0.0.0/8");
  ASSERT_TRUE(cidr.has_value());
  EXPECT_EQ(cidr->length(), 8);
  const auto bare = Ipv4Prefix::parse("10.1.2.3");
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->length(), 32);
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/33"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/-1"));
  EXPECT_FALSE(Ipv4Prefix::parse("10.0.0.0/"));
  EXPECT_FALSE(Ipv4Prefix::parse("/24"));
}

TEST(Ipv4Prefix, ContainsAddressesWithinBlock) {
  const Ipv4Prefix prefix(*Ipv4Address::parse("198.51.100.0"), 24);
  EXPECT_TRUE(prefix.contains(*Ipv4Address::parse("198.51.100.0")));
  EXPECT_TRUE(prefix.contains(*Ipv4Address::parse("198.51.100.255")));
  EXPECT_FALSE(prefix.contains(*Ipv4Address::parse("198.51.101.0")));
  EXPECT_FALSE(prefix.contains(*Ipv4Address::parse("198.51.99.255")));
}

TEST(Ipv4Prefix, ContainsNestedPrefixes) {
  const Ipv4Prefix big(*Ipv4Address::parse("10.0.0.0"), 8);
  const Ipv4Prefix small(*Ipv4Address::parse("10.1.2.0"), 24);
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));
}

TEST(Ipv4Prefix, SizeAndAddressAt) {
  const Ipv4Prefix prefix(*Ipv4Address::parse("203.0.113.0"), 24);
  EXPECT_EQ(prefix.size(), 256u);
  EXPECT_EQ(prefix.address_at(0), prefix.network());
  EXPECT_EQ(prefix.address_at(255), prefix.last_address());
  EXPECT_EQ(Ipv4Prefix(Ipv4Address(0), 0).size(), std::uint64_t{1} << 32);
}

TEST(Ipv4Prefix, Slash24OfCoversAddress) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const Ipv4Address address(static_cast<std::uint32_t>(rng()));
    const Ipv4Prefix prefix = Ipv4Prefix::slash24_of(address);
    EXPECT_EQ(prefix.length(), 24);
    EXPECT_TRUE(prefix.contains(address));
  }
}

TEST(Ipv4Prefix, EqualityIsCanonical) {
  // Same block named via different interior addresses compares equal.
  EXPECT_EQ(Ipv4Prefix(*Ipv4Address::parse("10.0.0.7"), 24),
            Ipv4Prefix(*Ipv4Address::parse("10.0.0.200"), 24));
  EXPECT_NE(Ipv4Prefix(*Ipv4Address::parse("10.0.0.0"), 24),
            Ipv4Prefix(*Ipv4Address::parse("10.0.0.0"), 25));
}

TEST(Endpoint, HashesDistinctPorts) {
  std::unordered_set<Endpoint> endpoints;
  const Ipv4Address address = *Ipv4Address::parse("10.0.0.1");
  for (std::uint32_t port = 0; port < 1000; ++port) {
    endpoints.insert(Endpoint{address, static_cast<std::uint16_t>(port)});
  }
  EXPECT_EQ(endpoints.size(), 1000u);
}

TEST(Endpoint, ToStringIncludesPort) {
  EXPECT_EQ(to_string(Endpoint{*Ipv4Address::parse("1.2.3.4"), 6881}),
            "1.2.3.4:6881");
}

}  // namespace
}  // namespace reuse::net
