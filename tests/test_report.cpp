#include "analysis/report.h"

#include <gtest/gtest.h>

namespace reuse::analysis {
namespace {

TEST(PaperComparison, RendersTitleAndRows) {
  PaperComparison report("Figure X");
  report.row("metric one", "42", "40", "close")
      .row("metric two", "7%", "9%");
  const std::string out = report.to_string();
  EXPECT_NE(out.find("== Figure X =="), std::string::npos);
  EXPECT_NE(out.find("metric one"), std::string::npos);
  EXPECT_NE(out.find("paper"), std::string::npos);
  EXPECT_NE(out.find("measured"), std::string::npos);
  EXPECT_NE(out.find("close"), std::string::npos);
  EXPECT_NE(out.find("9%"), std::string::npos);
}

TEST(PaperComparison, EmptyReportStillRendersHeader) {
  PaperComparison report("Empty");
  const std::string out = report.to_string();
  EXPECT_NE(out.find("== Empty =="), std::string::npos);
  EXPECT_NE(out.find("metric"), std::string::npos);
}

}  // namespace
}  // namespace reuse::analysis
