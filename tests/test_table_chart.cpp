#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "netbase/chart.h"
#include "netbase/table.h"

namespace reuse::net {
namespace {

TEST(Formatting, WithThousands) {
  EXPECT_EQ(with_thousands(0), "0");
  EXPECT_EQ(with_thousands(999), "999");
  EXPECT_EQ(with_thousands(1000), "1,000");
  EXPECT_EQ(with_thousands(1234567), "1,234,567");
  EXPECT_EQ(with_thousands(-1234), "-1,234");
}

TEST(Formatting, Fixed) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

TEST(Formatting, CompactCount) {
  EXPECT_EQ(compact_count(512), "512");
  EXPECT_EQ(compact_count(29700), "29.7K");
  EXPECT_EQ(compact_count(2.0e6), "2.0M");
  EXPECT_EQ(compact_count(1.6e9), "1.6B");
}

TEST(Formatting, CsvEscape) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable table({"name", "count"});
  table.add_row({"alpha", "1,000"});
  table.add_row({"b", "22"});
  const std::string out = table.to_string();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  // Numeric cells right-align: "22" should be preceded by spaces up to the
  // width of "1,000".
  EXPECT_NE(out.find("   22"), std::string::npos);
}

TEST(AsciiTable, ShortRowsArePadded) {
  AsciiTable table({"a", "b", "c"});
  table.add_row({"only"});
  EXPECT_EQ(table.row_count(), 1u);
  EXPECT_NO_THROW((void)table.to_string());
  EXPECT_NO_THROW((void)table.to_csv());
}

TEST(AsciiTable, CsvOutput) {
  AsciiTable table({"name", "note"});
  table.add_row({"x,y", "plain"});
  const std::string csv = table.to_csv();
  EXPECT_EQ(csv, "name,note\n\"x,y\",plain\n");
}

TEST(Chart, RendersSeriesGlyphs) {
  ChartSeries series;
  series.label = "cdf";
  series.glyph = 'o';
  for (int i = 0; i <= 10; ++i) {
    series.points.emplace_back(i, i * i);
  }
  const std::string out = render_chart({series});
  EXPECT_NE(out.find('o'), std::string::npos);
  EXPECT_NE(out.find("cdf"), std::string::npos);
}

TEST(Chart, LogAxesHandleWideRanges) {
  ChartSeries series;
  series.label = "wide";
  for (int i = 0; i <= 6; ++i) {
    series.points.emplace_back(std::pow(10.0, i), std::pow(10.0, 6 - i));
  }
  ChartOptions options;
  options.log_x = true;
  options.log_y = true;
  EXPECT_NO_THROW((void)render_chart({series}, options));
}

TEST(Chart, EmptySeriesListIsSafe) {
  EXPECT_NO_THROW((void)render_chart({}));
}

TEST(Bars, RendersProportionalBars) {
  const std::string out = render_bars({{"spam", 90.0}, {"voip", 30.0}}, 30, "%");
  EXPECT_NE(out.find("spam"), std::string::npos);
  // spam's bar must be longer than voip's.
  const auto spam_hashes = std::count(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(out.find('\n')), '#');
  EXPECT_EQ(spam_hashes, 30);
}

TEST(Bars, ZeroValuesAreSafe) {
  EXPECT_NO_THROW((void)render_bars({{"a", 0.0}, {"b", 0.0}}));
}

}  // namespace
}  // namespace reuse::net
