// The thread pool's only promise is that parallelism never shows: results
// land in index order, exceptions rethrow deterministically (lowest index
// wins), and a jobs == 1 pool is the serial loop. These tests exercise the
// scheduling corners — empty batches, counts far above the worker count,
// grain sizes bigger than the batch, nested calls from inside a body — that
// the scenario stages rely on implicitly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "netbase/metrics.h"
#include "netbase/rng.h"
#include "netbase/thread_pool.h"

namespace reuse::net {
namespace {

std::vector<std::size_t> touched_indices(ThreadPool& pool, std::size_t count,
                                         std::size_t grain = 0) {
  std::vector<std::atomic<int>> hits(count);
  pool.parallel_for(
      count, [&](std::size_t i) { hits[i].fetch_add(1); }, grain);
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < count; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    out.push_back(i);
  }
  return out;
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(jobs);
    EXPECT_EQ(pool.jobs(), jobs);
    for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{1000}}) {
      EXPECT_EQ(touched_indices(pool, count).size(), count)
          << "jobs=" << jobs << " count=" << count;
    }
  }
}

TEST(ThreadPool, GrainLargerThanCountStillCoversAll) {
  ThreadPool pool(4);
  EXPECT_EQ(touched_indices(pool, 5, /*grain=*/100).size(), 5u);
  EXPECT_EQ(touched_indices(pool, 64, /*grain=*/7).size(), 64u);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(8);
  const std::vector<int> squares =
      pool.parallel_map<int>(257, [](std::size_t i) {
        return static_cast<int>(i * i);
      });
  ASSERT_EQ(squares.size(), 257u);
  for (std::size_t i = 0; i < squares.size(); ++i) {
    EXPECT_EQ(squares[i], static_cast<int>(i * i));
  }
}

TEST(ThreadPool, ResultsIdenticalAcrossJobCounts) {
  // The determinism contract the scenario stages build on: per-index
  // substreams + index-ordered collection give byte-identical output for
  // every pool size.
  auto run = [](std::size_t jobs) {
    ThreadPool pool(jobs);
    return pool.parallel_map<std::uint64_t>(500, [](std::size_t i) {
      Rng rng = substream(/*seed=*/99, /*salt=*/0x7e57, i);
      std::uint64_t sum = 0;
      for (int draw = 0; draw < 10; ++draw) {
        sum += rng.uniform(std::uint64_t{1} << 40);
      }
      return sum;
    });
  };
  const auto serial = run(1);
  EXPECT_EQ(run(2), serial);
  EXPECT_EQ(run(8), serial);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  ThreadPool pool(8);
  for (int attempt = 0; attempt < 20; ++attempt) {
    try {
      pool.parallel_for(200, [&](std::size_t i) {
        if (i % 3 == 1) {  // 1 is the smallest failing index.
          throw std::runtime_error("unit " + std::to_string(i));
        }
      });
      FAIL() << "expected parallel_for to rethrow";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "unit 1");
    }
  }
}

TEST(ThreadPool, PoolSurvivesExceptionAndRunsAgain) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   10, [](std::size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The pool must be reusable after a failed batch.
  EXPECT_EQ(touched_indices(pool, 100).size(), 100u);
}

TEST(ThreadPool, NestedCallsRunInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // A body that itself calls parallel_for must not wait on workers that
    // are all busy running bodies — nested batches run inline.
    pool.parallel_for(16, [&](std::size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, SingleJobPoolSpawnsNoThreadsButWorks) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.jobs(), 1u);
  std::vector<std::size_t> order;
  pool.parallel_for(10, [&](std::size_t i) { order.push_back(i); });
  // Serial path runs strictly in index order on the caller.
  std::vector<std::size_t> expected(10);
  std::iota(expected.begin(), expected.end(), std::size_t{0});
  EXPECT_EQ(order, expected);
}

TEST(ThreadPool, HardwareJobsIsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

TEST(ForEachIndex, NullPoolRunsSerial) {
  std::vector<std::size_t> order;
  for_each_index(nullptr, 5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ForEachIndex, ForwardsToPool) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  for_each_index(&pool, 300, [&](std::size_t i) { total.fetch_add(i); });
  EXPECT_EQ(total.load(), 300u * 299u / 2u);
}

TEST(ThreadPool, QueueDepthGaugeReturnsToZeroBetweenBatches) {
  // The gauge is raised by the dispatcher before workers can claim and
  // lowered by claimed chunk widths; between batches it must read exactly 0
  // — a residue would mean double-counted or lost units.
  metrics::Gauge& depth = metrics::gauge("pool_queue_depth", "");
  ThreadPool pool(4);
  for (int batch = 0; batch < 10; ++batch) {
    std::atomic<std::size_t> hits{0};
    pool.parallel_for(257, [&](std::size_t) { hits.fetch_add(1); });
    EXPECT_EQ(hits.load(), 257u);
    EXPECT_EQ(depth.value(), 0);
  }
}

TEST(ThreadPool, QueueDepthGaugeSettlesAfterException) {
  // A failing batch stops claiming, stranding units that were dispatched
  // but never claimed; the dispatcher settles them so the gauge still
  // reads 0 after the rethrow.
  metrics::Gauge& depth = metrics::gauge("pool_queue_depth", "");
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(
          1000,
          [&](std::size_t i) {
            if (i == 3) throw std::runtime_error("boom");
          },
          /*grain=*/1),
      std::runtime_error);
  EXPECT_EQ(depth.value(), 0);
  // And the pool keeps accounting correctly afterwards.
  pool.parallel_for(100, [](std::size_t) {});
  EXPECT_EQ(depth.value(), 0);
}

TEST(ThreadPool, QueueDepthGaugeNeverNegativeUnderConcurrentObserver) {
  // Decrements are bounded by prior claims, and claims are bounded by the
  // dispatch increment that precedes batch publication — so no observer
  // interleaving can read below zero (or above the batch size here).
  metrics::Gauge& depth = metrics::gauge("pool_queue_depth", "");
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  std::int64_t min_seen = 0;
  std::int64_t max_seen = 0;
  std::thread observer([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const std::int64_t v = depth.value();
      min_seen = std::min(min_seen, v);
      max_seen = std::max(max_seen, v);
    }
  });
  for (int batch = 0; batch < 50; ++batch) {
    pool.parallel_for(
        512, [](std::size_t) {}, /*grain=*/8);
  }
  done.store(true, std::memory_order_relaxed);
  observer.join();
  EXPECT_GE(min_seen, 0);
  EXPECT_LE(max_seen, 512);
  EXPECT_EQ(depth.value(), 0);
}

TEST(Substream, IsPureAndIndexSensitive) {
  // substream() must be a pure function of (seed, salt, index): calling it
  // twice gives the same stream, and adjacent indices give distinct streams.
  Rng a = substream(7, 0xfeed, 3);
  Rng b = substream(7, 0xfeed, 3);
  Rng c = substream(7, 0xfeed, 4);
  bool any_diff = false;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t va = a();
    EXPECT_EQ(va, b());
    any_diff |= va != c();
  }
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace reuse::net
