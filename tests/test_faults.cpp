#include "simnet/faults.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "blocklist/parse.h"
#include "simnet/event_queue.h"
#include "simnet/transport.h"

namespace reuse::sim {
namespace {

net::Endpoint ep(std::uint32_t host, std::uint16_t port) {
  return net::Endpoint{net::Ipv4Address(host), port};
}

net::TimeWindow window(std::int64_t begin_s, std::int64_t end_s) {
  return net::TimeWindow{net::SimTime(begin_s), net::SimTime(end_s)};
}

FaultPlan one_episode(FaultKind kind, net::TimeWindow w, double severity,
                      std::uint64_t salt = 1, std::uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.episodes.push_back(FaultEpisode{kind, w, severity, salt});
  return plan;
}

TEST(FaultInjector, DefaultConstructedIsInert) {
  FaultInjector injector;
  EXPECT_FALSE(injector.active());
  injector.designate_bootstrap(ep(1, 80));
  EXPECT_FALSE(injector.drop_request(ep(1, 80), net::SimTime(0)));
  EXPECT_FALSE(injector.drop_response(net::SimTime(0)));
  EXPECT_FALSE(injector.feed_snapshot_missing(0, 0));
  EXPECT_FALSE(injector.feed_corrupted(0, 0));
  EXPECT_FALSE(injector.atlas_record_suppressed(net::SimTime(0)));
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, BootstrapOutageBlackholesOnlyTheBootstrapInWindow) {
  FaultInjector injector(
      one_episode(FaultKind::kBootstrapOutage, window(100, 200), 1.0));
  injector.designate_bootstrap(ep(1, 80));
  // Outside the window and to other endpoints nothing drops.
  EXPECT_FALSE(injector.drop_request(ep(1, 80), net::SimTime(99)));
  EXPECT_FALSE(injector.drop_request(ep(1, 80), net::SimTime(200)));
  EXPECT_FALSE(injector.drop_request(ep(2, 80), net::SimTime(150)));
  // Inside the window the bootstrap is gone.
  EXPECT_TRUE(injector.drop_request(ep(1, 80), net::SimTime(100)));
  EXPECT_TRUE(injector.drop_request(ep(1, 80), net::SimTime(199)));
  EXPECT_EQ(injector.stats().bootstrap_blackholes, 2u);
  EXPECT_EQ(injector.stats().total(), 2u);
}

TEST(FaultInjector, BootstrapOutageInertWithoutDesignation) {
  FaultInjector injector(
      one_episode(FaultKind::kBootstrapOutage, window(0, 100), 1.0));
  EXPECT_FALSE(injector.drop_request(ep(1, 80), net::SimTime(50)));
  EXPECT_EQ(injector.stats().total(), 0u);
}

TEST(FaultInjector, BurstLossSeverityOneDropsEverythingInWindow) {
  FaultInjector injector(
      one_episode(FaultKind::kBurstLoss, window(10, 20), 1.0));
  for (int t = 10; t < 20; ++t) {
    EXPECT_TRUE(injector.drop_request(ep(3, 1), net::SimTime(t)));
    EXPECT_TRUE(injector.drop_response(net::SimTime(t)));
  }
  EXPECT_FALSE(injector.drop_request(ep(3, 1), net::SimTime(20)));
  EXPECT_FALSE(injector.drop_response(net::SimTime(9)));
  EXPECT_EQ(injector.stats().burst_request_drops, 10u);
  EXPECT_EQ(injector.stats().burst_response_drops, 10u);
}

TEST(FaultInjector, FeedDecisionsAreOrderIndependent) {
  // Per-(list, day) decisions are stateless hashes: two injectors queried in
  // opposite orders must agree on every single decision.
  const FaultPlan plan =
      one_episode(FaultKind::kFeedOutage, window(0, 10 * 86400), 0.5);
  FaultInjector forward(plan);
  FaultInjector backward(plan);
  std::map<std::pair<std::size_t, std::int64_t>, bool> fwd, bwd;
  for (std::size_t list = 0; list < 40; ++list) {
    for (std::int64_t day = 0; day < 10; ++day) {
      fwd[{list, day}] = forward.feed_snapshot_missing(list, day);
    }
  }
  for (std::size_t list = 40; list-- > 0;) {
    for (std::int64_t day = 10; day-- > 0;) {
      bwd[{list, day}] = backward.feed_snapshot_missing(list, day);
    }
  }
  EXPECT_EQ(fwd, bwd);
  EXPECT_EQ(forward.stats().feed_snapshots_suppressed,
            backward.stats().feed_snapshots_suppressed);
}

TEST(FaultInjector, FeedSeverityPicksRoughlyThatFractionOfLists) {
  FaultInjector injector(
      one_episode(FaultKind::kFeedOutage, window(0, 86400), 0.3));
  int missing = 0;
  constexpr int kLists = 2000;
  for (int list = 0; list < kLists; ++list) {
    if (injector.feed_snapshot_missing(static_cast<std::size_t>(list), 0)) {
      ++missing;
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / kLists, 0.3, 0.05);
  EXPECT_EQ(injector.stats().feed_snapshots_suppressed,
            static_cast<std::uint64_t>(missing));
}

TEST(FaultInjector, CorruptFeedTextNeverGrowsOrAddsLines) {
  FaultInjector injector(
      one_episode(FaultKind::kFeedCorruption, window(0, 100 * 86400), 1.0));
  const std::string feed =
      "# header\n10.0.0.1\n10.0.0.2\n10.0.0.3\n192.168.1.1\n10.9.8.7\n";
  const auto newlines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  for (std::int64_t day = 0; day < 50; ++day) {
    for (std::size_t list = 0; list < 8; ++list) {
      const std::string garbled = injector.corrupt_feed_text(feed, list, day);
      EXPECT_LE(garbled.size(), feed.size());
      EXPECT_LE(newlines(garbled), newlines(feed));
      EXPECT_EQ(garbled.find("10.0.0.0/"), std::string::npos)
          << "corruption must not synthesise CIDR lines";
      // Parsed entries can only shrink: each surviving line is at most one
      // entry, and no new lines appear.
      const blocklist::ParsedList parsed = blocklist::parse_list_text(garbled);
      EXPECT_LE(parsed.addresses.size() + parsed.prefixes.size(), 5u);
    }
  }
}

TEST(FaultInjector, CorruptFeedTextIsPure) {
  FaultInjector a(
      one_episode(FaultKind::kFeedCorruption, window(0, 86400), 1.0));
  FaultInjector b(
      one_episode(FaultKind::kFeedCorruption, window(0, 86400), 1.0));
  const std::string feed = "10.0.0.1\n10.0.0.2\n10.0.0.3\n";
  // Same (list, day) garbles identically across injectors and repeat calls;
  // different coordinates garble independently.
  EXPECT_EQ(a.corrupt_feed_text(feed, 3, 1), b.corrupt_feed_text(feed, 3, 1));
  EXPECT_EQ(a.corrupt_feed_text(feed, 3, 1), a.corrupt_feed_text(feed, 3, 1));
  EXPECT_EQ(a.corrupt_feed_text("", 3, 1), "");
}

TEST(FaultInjector, AtlasGapSuppressesOnlyInsideWindow) {
  FaultInjector injector(
      one_episode(FaultKind::kAtlasGap, window(1000, 2000), 1.0));
  EXPECT_FALSE(injector.atlas_record_suppressed(net::SimTime(999)));
  EXPECT_TRUE(injector.atlas_record_suppressed(net::SimTime(1000)));
  EXPECT_TRUE(injector.atlas_record_suppressed(net::SimTime(1999)));
  EXPECT_FALSE(injector.atlas_record_suppressed(net::SimTime(2000)));
  EXPECT_EQ(injector.stats().atlas_records_suppressed, 2u);
}

TEST(FaultInjector, TransportDatagramConservationWithFaults) {
  using StringTransport = Transport<std::string, std::string>;
  EventQueue events;
  TransportConfig config;
  config.request_loss = 0.2;
  config.response_loss = 0.2;
  config.min_delay = net::Duration::seconds(1);
  config.max_delay = net::Duration::seconds(1);
  StringTransport transport(events, net::Rng(11), config);

  FaultPlan plan;
  plan.seed = 5;
  plan.episodes.push_back(
      FaultEpisode{FaultKind::kBurstLoss, window(0, 3000), 0.5, 1});
  plan.episodes.push_back(
      FaultEpisode{FaultKind::kBootstrapOutage, window(0, 3000), 1.0, 2});
  FaultInjector injector(plan);
  injector.designate_bootstrap(ep(9, 9));
  transport.attach_faults(&injector);

  transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("y");
  });
  transport.bind(ep(9, 9), [](const net::Endpoint&, const std::string&) {
    return std::optional<std::string>("boot");
  });
  int bootstrap_replies = 0;
  for (int i = 0; i < 2000; ++i) {
    transport.send_request(ep(2, 1), ep(1, 80), "x",
                           [](const net::Endpoint&, const std::string&) {});
    transport.send_request(
        ep(2, 1), ep(9, 9), "boot?",
        [&](const net::Endpoint&, const std::string&) { ++bootstrap_replies; });
    events.run_all();
  }

  const TransportStats& stats = transport.stats();
  // The bootstrap was blackholed for the whole run.
  EXPECT_EQ(bootstrap_replies, 0);
  EXPECT_EQ(injector.stats().bootstrap_blackholes, 2000u);
  // Every datagram is accounted for exactly once.
  EXPECT_EQ(stats.requests_sent, stats.requests_delivered +
                                     stats.requests_lost +
                                     stats.requests_unroutable +
                                     stats.requests_lost_fault);
  EXPECT_EQ(stats.responses_sent, stats.responses_delivered +
                                      stats.responses_lost +
                                      stats.responses_lost_fault);
  // Transport's fault counters mirror the injector's ledger exactly.
  EXPECT_EQ(stats.requests_lost_fault, injector.stats().burst_request_drops +
                                           injector.stats().bootstrap_blackholes);
  EXPECT_EQ(stats.responses_lost_fault, injector.stats().burst_response_drops);
  EXPECT_GT(injector.stats().burst_request_drops, 0u);
  EXPECT_GT(injector.stats().burst_response_drops, 0u);
}

TEST(FaultInjector, EmptyPlanLeavesTransportByteIdentical) {
  using StringTransport = Transport<std::string, std::string>;
  const auto run = [](FaultInjector* injector) {
    EventQueue events;
    TransportConfig config;
    config.request_loss = 0.3;
    config.response_loss = 0.3;
    StringTransport transport(events, net::Rng(21), config);
    if (injector != nullptr) transport.attach_faults(injector);
    transport.bind(ep(1, 80), [](const net::Endpoint&, const std::string&) {
      return std::optional<std::string>("y");
    });
    std::vector<std::int64_t> reply_times;
    for (int i = 0; i < 500; ++i) {
      transport.send_request(ep(2, 1), ep(1, 80), "x",
                             [&](const net::Endpoint&, const std::string&) {
                               reply_times.push_back(events.now().seconds());
                             });
    }
    events.run_all();
    return reply_times;
  };
  FaultInjector inert;  // empty plan: hooks must not draw from any RNG
  EXPECT_EQ(run(nullptr), run(&inert));
  EXPECT_EQ(inert.stats().total(), 0u);
}

TEST(FaultKindNames, AllKindsHaveNames) {
  EXPECT_EQ(to_string(FaultKind::kBurstLoss), "burst-loss");
  EXPECT_EQ(to_string(FaultKind::kBootstrapOutage), "bootstrap-outage");
  EXPECT_EQ(to_string(FaultKind::kFeedOutage), "feed-outage");
  EXPECT_EQ(to_string(FaultKind::kFeedCorruption), "feed-corruption");
  EXPECT_EQ(to_string(FaultKind::kAtlasGap), "atlas-gap");
}

}  // namespace
}  // namespace reuse::sim
