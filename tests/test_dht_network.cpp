#include "dht/network.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace reuse::dht {
namespace {

inet::WorldConfig small_world_config() {
  auto config = inet::test_world_config(9);
  config.as_count = 25;
  return config;
}

class DhtNetworkTest : public ::testing::Test {
 protected:
  DhtNetworkTest()
      : world_(small_world_config()), network_(world_, events_, config()) {}

  static DhtNetworkConfig config() {
    DhtNetworkConfig config;
    config.seed = 77;
    return config;
  }

  inet::World world_;
  sim::EventQueue events_;
  DhtNetwork network_;
};

TEST_F(DhtNetworkTest, OnePeerPerBittorrentUser) {
  EXPECT_EQ(network_.peer_count(), world_.bittorrent_users().size());
}

TEST_F(DhtNetworkTest, AllCurrentEndpointsAreBound) {
  for (std::size_t i = 0; i <= network_.peer_count(); ++i) {
    EXPECT_TRUE(network_.transport().is_bound(network_.peer_at(i).endpoint()))
        << "peer " << i;
  }
}

TEST_F(DhtNetworkTest, EndpointsMatchUserAttachment) {
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    const DhtPeer& peer = network_.peer_at(i);
    const inet::User& user = world_.user(peer.user());
    switch (user.attachment) {
      case inet::AttachmentKind::kStatic:
      case inet::AttachmentKind::kHomeNat:
      case inet::AttachmentKind::kCgn:
        EXPECT_EQ(peer.endpoint().address, user.fixed_address);
        break;
      case inet::AttachmentKind::kDynamic:
        EXPECT_EQ(world_.role_of(peer.endpoint().address),
                  inet::PrefixRole::kDynamicPool);
        break;
    }
  }
}

TEST_F(DhtNetworkTest, NatMembersShareAddressWithDistinctPorts) {
  std::unordered_map<net::Ipv4Address, std::unordered_set<std::uint16_t>> seen;
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    const DhtPeer& peer = network_.peer_at(i);
    const auto [it, inserted] =
        seen[peer.endpoint().address].insert(peer.endpoint().port);
    EXPECT_TRUE(inserted) << "duplicate endpoint " << to_string(peer.endpoint());
  }
}

TEST_F(DhtNetworkTest, DynamicPeersHaveExclusiveAddresses) {
  std::unordered_set<net::Ipv4Address> dynamic_addresses;
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    const DhtPeer& peer = network_.peer_at(i);
    if (world_.user(peer.user()).attachment == inet::AttachmentKind::kDynamic) {
      EXPECT_TRUE(dynamic_addresses.insert(peer.endpoint().address).second)
          << "two subscribers hold " << peer.endpoint().address.to_string();
    }
  }
}

TEST_F(DhtNetworkTest, RoutingTablesAreSeeded) {
  std::size_t with_contacts = 0;
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    with_contacts += network_.peer_at(i).table().size() > 0;
  }
  EXPECT_GT(with_contacts, network_.peer_count() * 9 / 10);
  EXPECT_GT(network_.peer_at(0).table().size(), 40u);
}

TEST_F(DhtNetworkTest, BootstrapAnswersGetNodes) {
  bool answered = false;
  network_.transport().send_request(
      net::Endpoint{}, network_.bootstrap_endpoint(),
      GetNodesRequest{NodeId{}},
      [&](const net::Endpoint&, const DhtResponse& response) {
        answered = true;
        EXPECT_EQ(response.neighbors.size(), kNeighborsPerReply);
      });
  // Retry a few times: the transport may drop datagrams.
  for (int i = 0; i < 20 && !answered; ++i) {
    network_.transport().send_request(
        net::Endpoint{}, network_.bootstrap_endpoint(),
        GetNodesRequest{NodeId{}},
        [&](const net::Endpoint&, const DhtResponse& response) {
          answered = true;
          EXPECT_FALSE(response.neighbors.empty());
        });
    events_.run_all();
  }
  EXPECT_TRUE(answered);
}

TEST_F(DhtNetworkTest, ChurnChangesIdsAndEndpoints) {
  const std::uint64_t ids_before = network_.total_node_ids_used();
  network_.schedule_churn({net::SimTime(0), net::SimTime(10 * 86400)});
  events_.run_until(net::SimTime(10 * 86400));
  const auto& churn = network_.churn_stats();
  EXPECT_GT(churn.reboots, 0u);
  EXPECT_GT(churn.port_changes, 0u);
  EXPECT_GT(churn.address_changes, 0u);
  EXPECT_EQ(network_.total_node_ids_used(), ids_before + churn.reboots);
  // After churn every *current* endpoint must still be bound, and dynamic
  // exclusivity must be preserved.
  std::unordered_set<net::Ipv4Address> dynamic_addresses;
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    const DhtPeer& peer = network_.peer_at(i);
    EXPECT_TRUE(network_.transport().is_bound(peer.endpoint()));
    if (world_.user(peer.user()).attachment == inet::AttachmentKind::kDynamic) {
      EXPECT_TRUE(dynamic_addresses.insert(peer.endpoint().address).second);
    }
  }
}

TEST_F(DhtNetworkTest, PeersAnswerOnlyWhenOnline) {
  // An always-offline instant does not exist for always-on peers, but duty
  // peers must refuse when offline; probe the handler contract directly.
  for (std::size_t i = 1; i <= std::min<std::size_t>(network_.peer_count(), 200);
       ++i) {
    const DhtPeer& peer = network_.peer_at(i);
    for (int hour = 0; hour < 48; ++hour) {
      const net::SimTime t(hour * 3600);
      const auto response = peer.handle(BtPingRequest{}, t);
      EXPECT_EQ(response.has_value(), peer.online(t));
      if (response) {
        EXPECT_EQ(response->responder_id, peer.id());
      }
    }
  }
}

TEST_F(DhtNetworkTest, DistinctAddressesCountsUniquePublicIps) {
  std::unordered_set<net::Ipv4Address> addresses;
  for (std::size_t i = 1; i <= network_.peer_count(); ++i) {
    addresses.insert(network_.peer_at(i).endpoint().address);
  }
  EXPECT_EQ(network_.distinct_addresses(), addresses.size());
  EXPECT_LE(addresses.size(), network_.peer_count());
}

}  // namespace
}  // namespace reuse::dht
