#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "internet/abuse.h"
#include "internet/lease.h"
#include "internet/world.h"

namespace reuse::inet {
namespace {

DynamicPoolInfo make_pool(double mean_lease_seconds) {
  DynamicPoolInfo pool;
  pool.asn = 100;
  pool.index = 0;
  pool.prefixes = {*net::Ipv4Prefix::parse("10.0.0.0/24"),
                   *net::Ipv4Prefix::parse("10.0.1.0/24")};
  pool.mean_lease_seconds = mean_lease_seconds;
  return pool;
}

TEST(LeaseTimeline, CoversWindowContiguously) {
  const auto pool = make_pool(6 * 3600.0);
  const net::TimeWindow window{net::SimTime(0), net::SimTime(30 * 86400)};
  const LeaseTimeline timeline(pool, 99, window);
  const auto& segments = timeline.segments();
  ASSERT_FALSE(segments.empty());
  EXPECT_EQ(segments.front().begin, window.begin);
  EXPECT_EQ(segments.back().end, window.end);
  for (std::size_t i = 1; i < segments.size(); ++i) {
    EXPECT_EQ(segments[i].begin, segments[i - 1].end);
    EXPECT_NE(segments[i].address, segments[i - 1].address)
        << "lease renewal must change the address";
  }
}

TEST(LeaseTimeline, AddressesComeFromPool) {
  const auto pool = make_pool(3600.0);
  const LeaseTimeline timeline(pool, 5,
                               {net::SimTime(0), net::SimTime(7 * 86400)});
  for (const LeaseSegment& segment : timeline.segments()) {
    const bool in_pool =
        pool.prefixes[0].contains(segment.address) ||
        pool.prefixes[1].contains(segment.address);
    EXPECT_TRUE(in_pool) << segment.address.to_string();
  }
}

TEST(LeaseTimeline, AddressAtFindsHolderAndRejectsOutside) {
  const auto pool = make_pool(86400.0);
  const net::TimeWindow window{net::SimTime(1000), net::SimTime(10 * 86400)};
  const LeaseTimeline timeline(pool, 7, window);
  EXPECT_FALSE(timeline.address_at(net::SimTime(999)).has_value());
  EXPECT_FALSE(timeline.address_at(net::SimTime(10 * 86400)).has_value());
  for (const LeaseSegment& segment : timeline.segments()) {
    EXPECT_EQ(timeline.address_at(segment.begin), segment.address);
    EXPECT_EQ(timeline.address_at(segment.end - net::Duration::seconds(1)),
              segment.address);
  }
}

TEST(LeaseTimeline, MeanChangeIntervalTracksPoolLease) {
  const double mean = 12 * 3600.0;
  const auto pool = make_pool(mean);
  // Long window, so the empirical mean converges.
  const LeaseTimeline timeline(pool, 11,
                               {net::SimTime(0), net::SimTime(400 * 86400)});
  const auto interval = timeline.mean_change_interval();
  ASSERT_TRUE(interval.has_value());
  EXPECT_NEAR(static_cast<double>(interval->count()), mean, mean * 0.25);
}

TEST(LeaseTimeline, SlowPoolMayNeverChange) {
  const auto pool = make_pool(3650.0 * 86400);  // ten-year leases
  const LeaseTimeline timeline(pool, 13,
                               {net::SimTime(0), net::SimTime(30 * 86400)});
  EXPECT_EQ(timeline.change_count(), 0u);
  EXPECT_FALSE(timeline.mean_change_interval().has_value());
  EXPECT_EQ(timeline.distinct_addresses().size(), 1u);
}

TEST(LeaseTimeline, DeterministicPerSeed) {
  const auto pool = make_pool(7200.0);
  const net::TimeWindow window{net::SimTime(0), net::SimTime(5 * 86400)};
  const LeaseTimeline a(pool, 21, window);
  const LeaseTimeline b(pool, 21, window);
  const LeaseTimeline c(pool, 22, window);
  ASSERT_EQ(a.segments().size(), b.segments().size());
  for (std::size_t i = 0; i < a.segments().size(); ++i) {
    EXPECT_EQ(a.segments()[i].address, b.segments()[i].address);
  }
  EXPECT_NE(a.segments().size(), c.segments().size());
}

class AbuseTest : public ::testing::Test {
 protected:
  static const World& world() {
    static const World kWorld(test_world_config(5));
    return kWorld;
  }
  static const std::vector<AbuseEvent>& events() {
    static const std::vector<AbuseEvent> kEvents = [] {
      AbuseGenConfig config;
      config.window = {net::SimTime(0), net::SimTime(20 * 86400)};
      config.seed = 17;
      return generate_abuse(world(), config);
    }();
    return kEvents;
  }
};

TEST_F(AbuseTest, EventsAreSortedAndInWindow) {
  ASSERT_FALSE(events().empty());
  for (std::size_t i = 0; i < events().size(); ++i) {
    EXPECT_GE(events()[i].time_seconds, 0);
    EXPECT_LT(events()[i].time_seconds, 20 * 86400);
    if (i > 0) {
      EXPECT_LE(events()[i - 1].time_seconds, events()[i].time_seconds);
    }
  }
}

TEST_F(AbuseTest, EventSourcesMatchActors) {
  for (const AbuseEvent& event : events()) {
    if (event.actor == 0) {
      // Malicious server event: source must be a server address.
      EXPECT_EQ(world().role_of(event.source), PrefixRole::kServerHosting);
    } else {
      const User& user = world().user(event.actor);
      EXPECT_TRUE(user.infected);
      EXPECT_TRUE(user.emits(event.category));
      if (user.attachment == AttachmentKind::kDynamic) {
        EXPECT_EQ(world().role_of(event.source), PrefixRole::kDynamicPool);
      } else {
        EXPECT_EQ(event.source, user.fixed_address);
      }
    }
    EXPECT_EQ(world().asn_of(event.source), event.asn);
  }
}

TEST_F(AbuseTest, DynamicActorsSmearAcrossAddresses) {
  // At least one infected dynamic user on a fast pool must appear with
  // several source addresses — the taint-smearing mechanism.
  std::unordered_map<UserId, std::unordered_set<net::Ipv4Address>> sources;
  for (const AbuseEvent& event : events()) {
    if (event.actor != 0 &&
        world().user(event.actor).attachment == AttachmentKind::kDynamic) {
      sources[event.actor].insert(event.source);
    }
  }
  std::size_t multi_address_actors = 0;
  for (const auto& [actor, addresses] : sources) {
    if (addresses.size() > 1) ++multi_address_actors;
  }
  EXPECT_GT(multi_address_actors, 0u);
}

TEST_F(AbuseTest, DeterministicGeneration) {
  AbuseGenConfig config;
  config.window = {net::SimTime(0), net::SimTime(20 * 86400)};
  config.seed = 17;
  const auto again = generate_abuse(world(), config);
  ASSERT_EQ(again.size(), events().size());
  for (std::size_t i = 0; i < again.size(); i += 97) {
    EXPECT_EQ(again[i].source, events()[i].source);
    EXPECT_EQ(again[i].time_seconds, events()[i].time_seconds);
  }
}

TEST_F(AbuseTest, RatesScaleWithConfig) {
  AbuseGenConfig config;
  config.window = {net::SimTime(0), net::SimTime(20 * 86400)};
  config.seed = 17;
  config.user_events_per_day = 0.01;
  config.server_events_per_day = 0.01;
  const auto sparse = generate_abuse(world(), config);
  EXPECT_LT(sparse.size(), events().size() / 10);
}

TEST(LeaseTimeline, MeanOverrideShortensSegments) {
  const double mean = 10 * 86400.0;
  const auto pool = make_pool(mean);
  const net::TimeWindow window{net::SimTime(0), net::SimTime(200 * 86400)};
  const LeaseTimeline honest(pool, 31, window);
  const LeaseTimeline evading(pool, 31, window, mean / 12.0);
  EXPECT_GT(evading.segments().size(), honest.segments().size() * 4);
  // Explicitly passing 0 (no override) must draw the identical timeline —
  // this is what keeps evasion_lease_factor == 1.0 byte-identical.
  const LeaseTimeline defaulted(pool, 31, window, 0.0);
  ASSERT_EQ(defaulted.segments().size(), honest.segments().size());
  for (std::size_t i = 0; i < honest.segments().size(); ++i) {
    EXPECT_EQ(defaulted.segments()[i].address, honest.segments()[i].address);
  }
}

TEST(AbuseEvasion, FactorOneIsByteIdenticalToDefault) {
  WorldConfig base_config = test_world_config(5);
  base_config.evasion_lease_factor = 1.0;  // explicit, same as default
  const World world(base_config);
  AbuseGenConfig config;
  config.window = {net::SimTime(0), net::SimTime(20 * 86400)};
  config.seed = 17;
  const auto baseline = generate_abuse(World(test_world_config(5)), config);
  const auto explicit_one = generate_abuse(world, config);
  ASSERT_EQ(baseline.size(), explicit_one.size());
  for (std::size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].source, explicit_one[i].source);
    EXPECT_EQ(baseline[i].time_seconds, explicit_one[i].time_seconds);
  }
}

TEST(AbuseEvasion, EvadersSmearAcrossMoreAddresses) {
  WorldConfig evading_config = test_world_config(5);
  evading_config.evasion_lease_factor = 12.0;
  const World honest_world(test_world_config(5));
  const World evading_world(evading_config);
  AbuseGenConfig config;
  config.window = {net::SimTime(0), net::SimTime(20 * 86400)};
  config.seed = 17;
  const auto count_distinct_sources = [&](const World& world) {
    std::unordered_map<UserId, std::unordered_set<net::Ipv4Address>> sources;
    for (const AbuseEvent& event : generate_abuse(world, config)) {
      if (event.actor != 0 &&
          world.user(event.actor).attachment == AttachmentKind::kDynamic) {
        sources[event.actor].insert(event.source);
      }
    }
    std::size_t total = 0;
    for (const auto& [actor, addresses] : sources) total += addresses.size();
    return total;
  };
  // The evasion factor only touches infected dynamic users' lease draws,
  // so the same actors emit at the same times from MORE distinct
  // addresses: the taint smears wider while every listing grows staler.
  EXPECT_GT(count_distinct_sources(evading_world),
            count_distinct_sources(honest_world));
}

}  // namespace
}  // namespace reuse::inet
