// The lookup engine against a naive oracle: the compiled snapshot and the
// two-level search must agree *exactly* with a straightforward store +
// NAT-set + prefix-trie reimplementation on every address — including
// addresses that hit bucket boundaries, and including queries issued while
// another thread swaps the served snapshot (the TSan-covered case).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "netbase/rng.h"
#include "serve/lookup.h"
#include "serve/snapshot.h"

namespace reuse::serve {
namespace {

/// A randomized world, clustered so /24 buckets actually fill up: listings
/// concentrate in a handful of /16 bases, NAT membership samples listed and
/// unlisted addresses, and dynamic pools span /20 through /26 (so the /24
/// projection has both expansion and covering cases).
struct World {
  blocklist::SnapshotStore store;
  std::unordered_set<net::Ipv4Address> nated;
  net::PrefixSet dynamic;
  std::vector<blocklist::BlocklistInfo> catalogue;

  explicit World(std::uint64_t seed, std::size_t listings = 20'000) {
    net::Rng rng(seed);
    constexpr std::uint32_t kBases[] = {0x0a000000, 0x42000000, 0xc0a80000,
                                        0xdc000000};
    const int lists = 8;
    for (int id = 1; id <= lists; ++id) {
      catalogue.push_back({static_cast<blocklist::ListId>(id),
                           "list-" + std::to_string(id), "m",
                           blocklist::ListCategory::kReputation, 0.1, 5.0,
                           false});
    }
    for (std::size_t i = 0; i < listings; ++i) {
      const std::uint32_t base = kBases[rng.uniform(std::size(kBases))];
      const net::Ipv4Address address(
          base | static_cast<std::uint32_t>(rng.uniform(1u << 16)));
      const auto list =
          static_cast<blocklist::ListId>(1 + rng.uniform(lists));
      store.record(list, address, static_cast<std::int64_t>(rng.uniform(30)));
      if (rng.bernoulli(0.25)) nated.insert(address);
    }
    for (int i = 0; i < 40; ++i) {
      const std::uint32_t base = kBases[rng.uniform(std::size(kBases))];
      const int length = static_cast<int>(rng.uniform_int(20, 26));
      const std::uint32_t raw =
          base | static_cast<std::uint32_t>(rng.uniform(1u << 16));
      dynamic.insert(net::Ipv4Prefix(net::Ipv4Address(raw), length));
    }
    // NATed-but-unlisted addresses must also answer correctly.
    for (int i = 0; i < 500; ++i) {
      const std::uint32_t base = kBases[rng.uniform(std::size(kBases))];
      nated.insert(net::Ipv4Address(
          base | static_cast<std::uint32_t>(rng.uniform(1u << 16))));
    }
  }

  [[nodiscard]] CompiledSnapshot compile() const {
    return SnapshotBuilder()
        .with_store(store)
        .with_nated(nated)
        .with_dynamic(dynamic)
        .with_catalogue(catalogue)
        .build();
  }
};

/// The naive reimplementation of the verdict contract, sharing no code with
/// the snapshot's projection or search: linear scans and direct range
/// arithmetic only.
class Oracle {
 public:
  explicit Oracle(const World& world) : world_(world) {
    // Top-list order per the contract: distinct-address count descending,
    // id ascending, at most kMaxTopLists entries.
    std::vector<blocklist::ListId> lists = world.store.active_lists();
    std::sort(lists.begin(), lists.end(),
              [&](blocklist::ListId a, blocklist::ListId b) {
                const std::size_t ca = world.store.address_count_of(a);
                const std::size_t cb = world.store.address_count_of(b);
                if (ca != cb) return ca > cb;
                return a < b;
              });
    if (lists.size() > static_cast<std::size_t>(kMaxTopLists)) {
      lists.resize(static_cast<std::size_t>(kMaxTopLists));
    }
    top_lists_ = std::move(lists);
    dynamic_prefixes_ = world.dynamic.to_vector();
  }

  [[nodiscard]] Verdict verdict(net::Ipv4Address address) const {
    Verdict out;
    if (world_.store.contains_address(address)) {
      out.bits |= kVerdictListed;
      for (std::size_t bit = 0; bit < top_lists_.size(); ++bit) {
        if (world_.store.has_listing(top_lists_[bit], address)) {
          out.bits |= 1u << (kTopListShift + static_cast<int>(bit));
        }
      }
    }
    if (world_.nated.count(address) != 0) out.bits |= kVerdictNated;
    // Dynamic context: the query's covering /24 overlaps any dynamic pool.
    const std::uint64_t lo = address.value() & ~0xffULL;
    const std::uint64_t hi = lo + 0xff;
    for (const net::Ipv4Prefix& prefix : dynamic_prefixes_) {
      const std::uint64_t start = prefix.network().value();
      const std::uint64_t end =
          start + ((1ULL << (32 - prefix.length())) - 1);
      if (start <= hi && lo <= end) {
        out.bits |= kVerdictDynamic;
        break;
      }
    }
    return out;
  }

 private:
  const World& world_;
  std::vector<blocklist::ListId> top_lists_;
  std::vector<net::Ipv4Prefix> dynamic_prefixes_;
};

/// Fuzzed query set: half uniform across the whole space, half targeted at
/// the interesting structure — exact entries, near-miss neighbours in the
/// same /24, and adjacent /24s (bucket-boundary probes).
std::vector<net::Ipv4Address> fuzz_addresses(const CompiledSnapshot& snapshot,
                                             std::size_t count,
                                             std::uint64_t seed) {
  net::Rng rng(seed);
  const std::vector<net::Ipv4Address> entries =
      snapshot.entries_matching(0);  // every entry
  std::vector<net::Ipv4Address> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    if (i % 2 == 0 || entries.empty()) {
      out.emplace_back(static_cast<std::uint32_t>(rng()));
      continue;
    }
    const std::uint32_t entry =
        entries[rng.uniform(entries.size())].value();
    switch (rng.uniform(4)) {
      case 0:  // the entry itself
        out.emplace_back(entry);
        break;
      case 1:  // same /24, different host byte
        out.emplace_back((entry & ~0xffu) |
                         static_cast<std::uint32_t>(rng.uniform(256)));
        break;
      case 2:  // previous /24 (bucket-boundary probe)
        out.emplace_back(entry - 0x100u);
        break;
      default:  // next /24
        out.emplace_back(entry + 0x100u);
        break;
    }
  }
  return out;
}

TEST(LookupEquivalence, EngineAgreesWithOracleOnFuzzedAddresses) {
  const World world(0xf00d);
  const Oracle oracle(world);
  auto snapshot = std::make_shared<const CompiledSnapshot>(world.compile());
  LookupEngine engine;
  engine.publish(snapshot);

  // >= 100k fuzzed addresses, checked both per-point and per-batch.
  const std::vector<net::Ipv4Address> queries =
      fuzz_addresses(*snapshot, 120'000, 0xbeef);
  std::size_t mismatches = 0;
  for (const net::Ipv4Address address : queries) {
    const Verdict expected = oracle.verdict(address);
    const Verdict actual = engine.verdict(address);
    if (actual != expected && ++mismatches < 10) {
      ADD_FAILURE() << address.to_string() << ": engine bits " << actual.bits
                    << " != oracle bits " << expected.bits;
    }
  }
  EXPECT_EQ(mismatches, 0u);

  std::vector<Verdict> batch(queries.size());
  snapshot->verdict_batch(queries, batch);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(batch[i], oracle.verdict(queries[i])) << i;
  }
}

TEST(LookupEquivalence, OracleAgreementSurvivesDiskRoundTrip) {
  const World world(0xcafe, 5'000);
  const Oracle oracle(world);
  const std::string path =
      "test_lookup_equivalence_roundtrip.bin";
  ASSERT_TRUE(world.compile().save(path));
  const auto loaded = CompiledSnapshot::load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.has_value());
  for (const net::Ipv4Address address :
       fuzz_addresses(*loaded, 20'000, 0x1dea)) {
    ASSERT_EQ(loaded->verdict(address), oracle.verdict(address))
        << address.to_string();
  }
}

// The concurrency contract under TSan: queries race a publisher that keeps
// swapping between two *different* snapshots. Every verdict must equal one
// of the two oracles' answers for that address — a swap may land before or
// after any given query, but never corrupt one.
TEST(LookupEquivalence, ConcurrentQueriesDuringSwapMatchSomeOracle) {
  const World world_a(0xaaaa, 6'000);
  const World world_b(0xbbbb, 6'000);
  auto snap_a = std::make_shared<const CompiledSnapshot>(world_a.compile());
  auto snap_b = std::make_shared<const CompiledSnapshot>(world_b.compile());
  const Oracle oracle_a(world_a);
  const Oracle oracle_b(world_b);

  LookupEngine engine;
  engine.publish(snap_a);

  const std::vector<net::Ipv4Address> queries =
      fuzz_addresses(*snap_a, 8'000, 0x5a5a);
  // Precompute both oracles' answers so the racing threads only compare.
  std::vector<std::pair<Verdict, Verdict>> expected;
  expected.reserve(queries.size());
  for (const net::Ipv4Address address : queries) {
    expected.emplace_back(oracle_a.verdict(address),
                          oracle_b.verdict(address));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> violations{0};
  const int reader_count = 3;
  std::vector<std::thread> readers;
  readers.reserve(reader_count);
  for (int t = 0; t < reader_count; ++t) {
    readers.emplace_back([&, t] {
      std::vector<Verdict> batch(64);
      for (int pass = 0; pass < 40; ++pass) {
        for (std::size_t i = static_cast<std::size_t>(t);
             i < queries.size(); ++i) {
          const Verdict v = engine.verdict(queries[i]);
          if (v != expected[i].first && v != expected[i].second) {
            violations.fetch_add(1);
          }
        }
        // Batched path too, over a window with a shared pinned snapshot.
        for (std::size_t i = 0; i + 64 <= queries.size(); i += 64) {
          engine.verdict_batch(
              std::span<const net::Ipv4Address>(queries).subspan(i, 64),
              batch);
          for (std::size_t j = 0; j < 64; ++j) {
            if (batch[j] != expected[i + j].first &&
                batch[j] != expected[i + j].second) {
              violations.fetch_add(1);
            }
          }
        }
      }
    });
  }
  std::thread swapper([&] {
    bool use_b = true;
    while (!stop.load()) {
      engine.publish(use_b ? snap_b : snap_a);
      use_b = !use_b;
      std::this_thread::yield();
    }
  });
  for (std::thread& reader : readers) reader.join();
  stop.store(true);
  swapper.join();
  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(serve_metrics().swaps.value(), 0u);
}

}  // namespace
}  // namespace reuse::serve
