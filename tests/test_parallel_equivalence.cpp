// Determinism proof for the parallel scenario stages: every product a bench
// binary can read must be byte-identical for every --jobs value, with and
// without a chaos plan, and through the cache round-trip. The comparison is
// `products_fingerprint`, which hashes the ecosystem store, crawl outputs,
// fleet log/truths, pipeline funnel + prefix sets, and census metrics in a
// canonical order — so one EXPECT_EQ covers every artifact at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "analysis/cache.h"
#include "analysis/manifest.h"
#include "analysis/scenario.h"
#include "netbase/metrics.h"

namespace reuse::analysis {
namespace {

ScenarioConfig tiny_config(std::uint64_t seed = 5) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 30;
  config.crawl_days = 1;
  config.fleet.probe_count = 100;
  // Keep the census on (unlike most tiny fixtures): the census stage is one
  // of the parallel loops under test. A short window keeps it cheap.
  config.run_census = true;
  config.census.window = {net::SimTime(0), net::SimTime(2 * 86400)};
  config.finalize();
  return config;
}

std::uint64_t fingerprint_of(const Scenario& s) {
  return products_fingerprint(s.crawl, s.ecosystem, s.fleet, s.pipeline,
                              s.census);
}

std::uint64_t fingerprint_of(const CachedScenario& s) {
  return products_fingerprint(s.crawl, s.ecosystem, s.fleet, s.pipeline,
                              s.census);
}

std::uint64_t run_at(ScenarioConfig config, int jobs) {
  config.jobs = jobs;
  return fingerprint_of(run_scenario(config));
}

using MetricValues = std::vector<std::pair<std::string, std::int64_t>>;

// Runs the scenario from a clean global registry and returns the
// deterministic metric snapshot (everything except the scheduling-dependent
// pool_ family) alongside the products fingerprint.
MetricValues metrics_at(ScenarioConfig config, int jobs,
                        std::uint64_t* fingerprint) {
  net::metrics::Registry::global().reset();
  config.jobs = jobs;
  const Scenario s = run_scenario(config);
  *fingerprint = fingerprint_of(s);
  return net::metrics::Registry::global().flat_values("pool_");
}

MetricValues with_prefix(const MetricValues& values, std::string_view prefix) {
  MetricValues out;
  for (const auto& pair : values) {
    if (pair.first.rfind(prefix, 0) == 0) out.push_back(pair);
  }
  return out;
}

TEST(ParallelEquivalence, ProductsIdenticalAcrossJobCounts) {
  const ScenarioConfig config = tiny_config();
  const std::uint64_t serial = run_at(config, 1);
  EXPECT_EQ(run_at(config, 2), serial);
  EXPECT_EQ(run_at(config, 8), serial);
}

TEST(ParallelEquivalence, JobsZeroResolvesToHardwareAndMatchesSerial) {
  const ScenarioConfig config = tiny_config(11);
  EXPECT_EQ(run_at(config, 0), run_at(config, 1));
}

TEST(ParallelEquivalence, ChaosPlanDegradesIdenticallyAtAnyJobCount) {
  // Under fault injection the ledger is atomic and the per-unit draws come
  // from substreams, so even a degraded run must be byte-identical and
  // reconcile exactly regardless of the pool size.
  ScenarioConfig config = tiny_config(7);
  config.faults = default_chaos_plan(config, /*chaos_seed=*/1);
  config.pipeline.max_change_gap = net::Duration::days(7);
  config.finalize();

  config.jobs = 1;
  const Scenario serial = run_scenario(config);
  config.jobs = 8;
  const Scenario parallel = run_scenario(config);

  EXPECT_TRUE(serial.degradation.degraded());
  EXPECT_EQ(fingerprint_of(parallel), fingerprint_of(serial));
  EXPECT_EQ(parallel.degradation, serial.degradation);
  EXPECT_EQ(parallel.injector->stats(), serial.injector->stats());
  EXPECT_TRUE(parallel.degradation.reconciliation_failures().empty());
}

TEST(ParallelEquivalence, FingerprintIsSensitiveToTheSeed) {
  // Guard against a degenerate fingerprint (hashing nothing would make every
  // equivalence test above pass vacuously).
  EXPECT_NE(run_at(tiny_config(5), 1), run_at(tiny_config(6), 1));
}

TEST(ParallelEquivalence, JobsDoNotFeedTheConfigFingerprint) {
  ScenarioConfig serial = tiny_config();
  ScenarioConfig wide = tiny_config();
  wide.jobs = 8;
  // Same fingerprint => every jobs value shares one cache file.
  EXPECT_EQ(config_fingerprint(serial), config_fingerprint(wide));
}

TEST(ParallelEquivalence, CacheRoundTripUnderParallelJobs) {
  const std::string path = "test_parallel_equivalence_roundtrip.cache";
  std::remove(path.c_str());

  // Write the cache from a serial run, replay it with --jobs 8: the replayed
  // stages (fleet, pipeline, census) must land on the same products.
  ScenarioConfig config = tiny_config();
  config.jobs = 1;
  const CachedScenario miss = run_scenario_cached(config, path);
  ASSERT_FALSE(miss.cache_hit);

  config.jobs = 8;
  const CachedScenario hit = run_scenario_cached(config, path);
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_EQ(fingerprint_of(hit), fingerprint_of(miss));

  std::remove(path.c_str());
}

TEST(ParallelEquivalence, MetricsAndProductsIdenticalAcrossJobCounts) {
  // The metrics layer must be observability-only: with instrumentation
  // recording, products stay byte-identical across pool sizes, and every
  // deterministic metric (all families except pool_) lands on the same
  // value too.
  const ScenarioConfig config = tiny_config(3);
  std::uint64_t serial_fp = 0;
  std::uint64_t two_fp = 0;
  std::uint64_t wide_fp = 0;
  const MetricValues serial = metrics_at(config, 1, &serial_fp);
  const MetricValues two = metrics_at(config, 2, &two_fp);
  const MetricValues wide = metrics_at(config, 8, &wide_fp);
  EXPECT_EQ(two_fp, serial_fp);
  EXPECT_EQ(wide_fp, serial_fp);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(two, serial);
  EXPECT_EQ(wide, serial);
}

TEST(ParallelEquivalence, MetricsIdenticalUnderChaosAcrossJobCounts) {
  ScenarioConfig config = tiny_config(7);
  config.faults = default_chaos_plan(config, /*chaos_seed=*/1);
  config.finalize();
  std::uint64_t serial_fp = 0;
  std::uint64_t wide_fp = 0;
  const MetricValues serial = metrics_at(config, 1, &serial_fp);
  const MetricValues wide = metrics_at(config, 8, &wide_fp);
  EXPECT_EQ(wide_fp, serial_fp);
  EXPECT_EQ(wide, serial);
  // The chaos plan actually fired: at least one faults_ counter is nonzero.
  std::int64_t injected = 0;
  for (const auto& [name, value] : with_prefix(serial, "faults_")) {
    injected += value;
  }
  EXPECT_GT(injected, 0);
}

TEST(ParallelEquivalence, ManifestCoversAllSevenSubsystems) {
  net::metrics::Registry::global().reset();
  ScenarioConfig config = tiny_config();
  config.jobs = 2;
  const Scenario s = run_scenario(config);
  RunManifestInfo info;
  info.tool = "test_parallel_equivalence";
  info.config = &config;
  info.stage_times = &s.stage_times;
  const std::string json = run_manifest_json(info);
  for (const char* prefix :
       {"crawler_", "feeds_", "atlas_", "pipeline_", "cache_", "faults_",
        "pool_"}) {
    EXPECT_NE(json.find(prefix), std::string::npos)
        << "manifest missing subsystem family " << prefix;
  }
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"tool\": \"test_parallel_equivalence\""),
            std::string::npos);
  EXPECT_NE(json.find("\"config_fingerprint\": \""), std::string::npos);
}

TEST(ParallelEquivalence, CacheHitRepublishesCrawlAndFeedMetrics) {
  const std::string path = "test_parallel_equivalence_metrics.cache";
  std::remove(path.c_str());

  ScenarioConfig config = tiny_config(9);
  config.jobs = 1;
  net::metrics::Registry::global().reset();
  const CachedScenario miss = run_scenario_cached(config, path);
  ASSERT_FALSE(miss.cache_hit);
  const MetricValues fresh = net::metrics::Registry::global().flat_values();

  net::metrics::Registry::global().reset();
  const CachedScenario hit = run_scenario_cached(config, path);
  ASSERT_TRUE(hit.cache_hit);
  const MetricValues replayed = net::metrics::Registry::global().flat_values();

  // A hit restores crawl + ecosystem from disk instead of re-running them;
  // the loader must still publish those families from the cached products.
  EXPECT_EQ(with_prefix(replayed, "crawler_"), with_prefix(fresh, "crawler_"));
  EXPECT_EQ(with_prefix(replayed, "feeds_"), with_prefix(fresh, "feeds_"));
  ASSERT_FALSE(with_prefix(fresh, "crawler_").empty());
  ASSERT_FALSE(with_prefix(fresh, "feeds_").empty());
  // And the cache_ family reflects what actually happened on each side.
  // flat_values is name-sorted: bytes_read, bytes_written, hits, misses,
  // rejects, saves.
  const MetricValues miss_cache = with_prefix(fresh, "cache_");
  ASSERT_EQ(miss_cache.size(), 6u);
  EXPECT_EQ(miss_cache[0].second, 0);                // bytes_read
  EXPECT_GT(miss_cache[1].second, 0);                // bytes_written
  EXPECT_EQ(miss_cache[2].second, 0);                // hits
  EXPECT_EQ(miss_cache[3].second, 1);                // misses
  EXPECT_EQ(miss_cache[4].second, 0);                // rejects
  EXPECT_EQ(miss_cache[5].second, 1);                // saves
  const MetricValues hit_cache = with_prefix(replayed, "cache_");
  ASSERT_EQ(hit_cache.size(), 6u);
  EXPECT_GT(hit_cache[0].second, 0);                 // bytes_read
  EXPECT_EQ(hit_cache[1].second, 0);                 // bytes_written
  EXPECT_EQ(hit_cache[2].second, 1);                 // hits
  EXPECT_EQ(hit_cache[3].second, 0);                 // misses
  EXPECT_EQ(hit_cache[4].second, 0);                 // rejects
  EXPECT_EQ(hit_cache[5].second, 0);                 // saves

  std::remove(path.c_str());
}

}  // namespace
}  // namespace reuse::analysis
