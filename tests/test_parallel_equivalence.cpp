// Determinism proof for the parallel scenario stages: every product a bench
// binary can read must be byte-identical for every --jobs value, with and
// without a chaos plan, and through the cache round-trip. The comparison is
// `products_fingerprint`, which hashes the ecosystem store, crawl outputs,
// fleet log/truths, pipeline funnel + prefix sets, and census metrics in a
// canonical order — so one EXPECT_EQ covers every artifact at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "analysis/cache.h"
#include "analysis/scenario.h"

namespace reuse::analysis {
namespace {

ScenarioConfig tiny_config(std::uint64_t seed = 5) {
  ScenarioConfig config;
  config.seed = seed;
  config.world = inet::test_world_config(seed);
  config.world.as_count = 30;
  config.crawl_days = 1;
  config.fleet.probe_count = 100;
  // Keep the census on (unlike most tiny fixtures): the census stage is one
  // of the parallel loops under test. A short window keeps it cheap.
  config.run_census = true;
  config.census.window = {net::SimTime(0), net::SimTime(2 * 86400)};
  config.finalize();
  return config;
}

std::uint64_t fingerprint_of(const Scenario& s) {
  return products_fingerprint(s.crawl, s.ecosystem, s.fleet, s.pipeline,
                              s.census);
}

std::uint64_t fingerprint_of(const CachedScenario& s) {
  return products_fingerprint(s.crawl, s.ecosystem, s.fleet, s.pipeline,
                              s.census);
}

std::uint64_t run_at(ScenarioConfig config, int jobs) {
  config.jobs = jobs;
  return fingerprint_of(run_scenario(config));
}

TEST(ParallelEquivalence, ProductsIdenticalAcrossJobCounts) {
  const ScenarioConfig config = tiny_config();
  const std::uint64_t serial = run_at(config, 1);
  EXPECT_EQ(run_at(config, 2), serial);
  EXPECT_EQ(run_at(config, 8), serial);
}

TEST(ParallelEquivalence, JobsZeroResolvesToHardwareAndMatchesSerial) {
  const ScenarioConfig config = tiny_config(11);
  EXPECT_EQ(run_at(config, 0), run_at(config, 1));
}

TEST(ParallelEquivalence, ChaosPlanDegradesIdenticallyAtAnyJobCount) {
  // Under fault injection the ledger is atomic and the per-unit draws come
  // from substreams, so even a degraded run must be byte-identical and
  // reconcile exactly regardless of the pool size.
  ScenarioConfig config = tiny_config(7);
  config.faults = default_chaos_plan(config, /*chaos_seed=*/1);
  config.pipeline.max_change_gap = net::Duration::days(7);
  config.finalize();

  config.jobs = 1;
  const Scenario serial = run_scenario(config);
  config.jobs = 8;
  const Scenario parallel = run_scenario(config);

  EXPECT_TRUE(serial.degradation.degraded());
  EXPECT_EQ(fingerprint_of(parallel), fingerprint_of(serial));
  EXPECT_EQ(parallel.degradation, serial.degradation);
  EXPECT_EQ(parallel.injector->stats(), serial.injector->stats());
  EXPECT_TRUE(parallel.degradation.reconciliation_failures().empty());
}

TEST(ParallelEquivalence, FingerprintIsSensitiveToTheSeed) {
  // Guard against a degenerate fingerprint (hashing nothing would make every
  // equivalence test above pass vacuously).
  EXPECT_NE(run_at(tiny_config(5), 1), run_at(tiny_config(6), 1));
}

TEST(ParallelEquivalence, JobsDoNotFeedTheConfigFingerprint) {
  ScenarioConfig serial = tiny_config();
  ScenarioConfig wide = tiny_config();
  wide.jobs = 8;
  // Same fingerprint => every jobs value shares one cache file.
  EXPECT_EQ(config_fingerprint(serial), config_fingerprint(wide));
}

TEST(ParallelEquivalence, CacheRoundTripUnderParallelJobs) {
  const std::string path = "test_parallel_equivalence_roundtrip.cache";
  std::remove(path.c_str());

  // Write the cache from a serial run, replay it with --jobs 8: the replayed
  // stages (fleet, pipeline, census) must land on the same products.
  ScenarioConfig config = tiny_config();
  config.jobs = 1;
  const CachedScenario miss = run_scenario_cached(config, path);
  ASSERT_FALSE(miss.cache_hit);

  config.jobs = 8;
  const CachedScenario hit = run_scenario_cached(config, path);
  ASSERT_TRUE(hit.cache_hit);
  EXPECT_EQ(fingerprint_of(hit), fingerprint_of(miss));

  std::remove(path.c_str());
}

}  // namespace
}  // namespace reuse::analysis
