// The serving front end: frame validation, epoch reclamation, overload
// shedding, hostile-client eviction, hot reload under load, and exact
// ledger reconciliation against the seeded ChaosClient plan.
#include "serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <thread>

#include "serve/client.h"
#include "serve/epoch.h"
#include "serve/frame.h"
#include "serve/snapshot.h"

namespace reuse::serve {
namespace {

net::Ipv4Address addr(const char* text) {
  return *net::Ipv4Address::parse(text);
}

net::Ipv4Prefix prefix(const char* text) {
  return *net::Ipv4Prefix::parse(text);
}

/// Same hand-built world as test_serve.cpp: every verdict class present.
struct Fixture {
  blocklist::SnapshotStore store;
  std::unordered_set<net::Ipv4Address> nated;
  net::PrefixSet dynamic;

  Fixture() {
    store.record(1, addr("1.0.0.1"), 0);
    store.record(1, addr("2.0.0.1"), 0);
    store.record(2, addr("2.0.0.1"), 1);
    store.record(2, addr("3.0.0.1"), 0);
    nated.insert(addr("2.0.0.1"));
    nated.insert(addr("9.0.0.9"));
    dynamic.insert(prefix("3.0.0.0/24"));
  }

  [[nodiscard]] CompiledSnapshot build() const {
    return SnapshotBuilder()
        .with_store(store)
        .with_nated(nated)
        .with_dynamic(dynamic)
        .build();
  }
};

std::string u32_bytes(std::uint32_t value) {
  char bytes[4];
  std::memcpy(bytes, &value, sizeof bytes);
  return {bytes, sizeof bytes};
}

std::string u64_bytes(std::uint64_t value) {
  char bytes[8];
  std::memcpy(bytes, &value, sizeof bytes);
  return {bytes, sizeof bytes};
}

// ---------------------------------------------------------------------------
// Frame protocol

TEST(Frame, RequestRoundTripSurvivesBytewiseFeeding) {
  const std::vector<std::uint32_t> first{1, 2, 3};
  const std::vector<std::uint32_t> second{0xffffffffu};
  const std::string wire =
      encode_request(7, first) + encode_request(1ull << 40, second);

  RequestDecoder decoder;
  std::vector<RequestFrame> out;
  for (const char byte : wire) {  // worst-case torn transport: 1-byte reads
    decoder.feed({&byte, 1});
    while (auto frame = decoder.next()) out.push_back(*std::move(frame));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].request_id, 7u);
  EXPECT_EQ(out[0].addresses, first);
  EXPECT_EQ(out[1].request_id, 1ull << 40);
  EXPECT_EQ(out[1].addresses, second);
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Frame, ResponseRoundTripCarriesStatusAndVerdicts) {
  const std::vector<std::uint32_t> verdicts{kVerdictListed,
                                            kVerdictNated | kVerdictDynamic};
  ResponseDecoder decoder;
  decoder.feed(encode_response(42, ResponseStatus::kOk, verdicts));
  decoder.feed(encode_response(43, ResponseStatus::kShed, {}));
  const auto ok = decoder.next();
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->request_id, 42u);
  EXPECT_EQ(ok->status, ResponseStatus::kOk);
  EXPECT_EQ(ok->verdicts, verdicts);
  const auto shed = decoder.next();
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(shed->status, ResponseStatus::kShed);
  EXPECT_TRUE(shed->verdicts.empty());
}

TEST(Frame, PartialFrameStaysPendingNotRejected) {
  const std::string wire = encode_request(1, std::vector<std::uint32_t>{5});
  RequestDecoder decoder;
  decoder.feed(std::string_view(wire).substr(0, wire.size() / 2));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kNone);
  EXPECT_TRUE(decoder.mid_frame());  // the torn-write/slowloris tell
  decoder.feed(std::string_view(wire).substr(wire.size() / 2));
  EXPECT_TRUE(decoder.next().has_value());
  EXPECT_FALSE(decoder.mid_frame());
}

TEST(Frame, RejectsBadMagic) {
  std::string wire = u32_bytes(static_cast<std::uint32_t>(kFrameHeaderBytes));
  wire += u32_bytes(0xdeadbeefu);
  wire += u64_bytes(1);
  wire += u32_bytes(1);
  RequestDecoder decoder;
  decoder.feed(wire);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadMagic);
}

TEST(Frame, RejectsOversizedDeclaredLengthBeforeBuffering) {
  RequestDecoder decoder;
  // Four bytes are enough to refuse: the length word alone is over the cap.
  decoder.feed(u32_bytes(static_cast<std::uint32_t>(kMaxFrameBytes + 1)));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
}

TEST(Frame, RejectsUndersizedDeclaredLength) {
  RequestDecoder decoder;
  decoder.feed(u32_bytes(3));  // smaller than any legal frame body
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kBadLength);
}

TEST(Frame, RejectsZeroCountOverCountAndReservedBits) {
  const auto craft = [](std::uint32_t count_word, std::size_t payload_words) {
    std::string wire = u32_bytes(
        static_cast<std::uint32_t>(kFrameHeaderBytes + 4 * payload_words));
    wire += u32_bytes(kRequestMagic);
    wire += u64_bytes(9);
    wire += u32_bytes(count_word);
    wire.append(4 * payload_words, '\0');
    return wire;
  };
  {
    RequestDecoder decoder;  // zero count
    decoder.feed(craft(0, 0));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.error(), FrameError::kBadCount);
  }
  {
    RequestDecoder decoder;  // nonzero reserved (upper 16) bits
    decoder.feed(craft((1u << 16) | 1u, 1));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.error(), FrameError::kBadCount);
  }
  {
    RequestDecoder decoder;  // count disagrees with the frame length
    decoder.feed(craft(2, 1));
    EXPECT_FALSE(decoder.next().has_value());
    EXPECT_EQ(decoder.error(), FrameError::kBadLength);
  }
}

TEST(Frame, PoisonIsSticky) {
  RequestDecoder decoder;
  decoder.feed(u32_bytes(static_cast<std::uint32_t>(kMaxFrameBytes + 1)));
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_EQ(decoder.error(), FrameError::kOversized);
  // A poisoned stream never yields again, even for perfectly valid frames.
  decoder.feed(encode_request(1, std::vector<std::uint32_t>{1}));
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.error(), FrameError::kOversized);
}

// ---------------------------------------------------------------------------
// Epoch domain

TEST(Epoch, SynchronizeAdvancesTheGlobalEpoch) {
  EpochDomain& domain = EpochDomain::instance();
  const std::uint64_t before = domain.epoch();
  EXPECT_EQ(before % 2, 0u);
  domain.synchronize();
  EXPECT_EQ(domain.epoch(), before + 2);
}

TEST(Epoch, ReadGuardsNestOnOneThread) {
  {
    const ReadGuard outer;
    const ReadGuard inner;  // must not deadlock or corrupt the slot
  }
  // Fully exited: a writer barrier completes immediately.
  EpochDomain::instance().synchronize();
}

TEST(Epoch, SynchronizeWaitsForAnActiveReader) {
  std::atomic<bool> entered{false};
  std::atomic<bool> release{false};
  std::atomic<bool> synced{false};

  std::thread reader([&] {
    EpochDomain::instance().enter();
    entered.store(true);
    while (!release.load()) std::this_thread::yield();
    EpochDomain::instance().exit();
  });
  while (!entered.load()) std::this_thread::yield();

  std::thread writer([&] {
    EpochDomain::instance().synchronize();
    synced.store(true);
  });
  // The reader is inside its critical section: the barrier must not return.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(synced.load());
  release.store(true);
  writer.join();
  reader.join();
  EXPECT_TRUE(synced.load());
}

TEST(Epoch, SlotsRecycleWhenThreadsExit) {
  EpochDomain& domain = EpochDomain::instance();
  const int before = domain.active_slots();
  for (int i = 0; i < 64; ++i) {
    std::thread([&] { const ReadGuard guard; }).join();
  }
  // Every exited thread released its slot; sequential short-lived threads
  // must not leak the slot directory.
  EXPECT_EQ(domain.active_slots(), before);
}

// ---------------------------------------------------------------------------
// LookupServer

class ServerTest : public ::testing::Test {
 protected:
  Fixture fx_;
  LookupEngine engine_;
  std::shared_ptr<const CompiledSnapshot> snapshot_ =
      std::make_shared<const CompiledSnapshot>(fx_.build());

  void SetUp() override { engine_.publish(snapshot_); }

  [[nodiscard]] ServerConfig calm_config(int workers = 1) const {
    ServerConfig config;
    config.workers = workers;
    config.max_queue = 64;
    config.deadline_ms = 10'000;   // never sheds in a deterministic run
    config.stall_timeout_ms = 10'000;
    return config;
  }
};

TEST_F(ServerTest, ServesOracleVerdictsAndEchoesRequestIds) {
  LookupServer server(engine_, calm_config());
  LookupClient client(server.connect_client());
  ASSERT_TRUE(client.valid());

  const std::vector<std::uint32_t> queries{
      addr("1.0.0.1").value(), addr("2.0.0.1").value(),
      addr("3.0.0.99").value(), addr("9.0.0.9").value(),
      addr("200.1.2.3").value()};
  ASSERT_TRUE(client.send_batch(0xfeedULL, queries));
  const auto response = client.read_response();
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->request_id, 0xfeedULL);
  EXPECT_EQ(response->status, ResponseStatus::kOk);
  ASSERT_EQ(response->verdicts.size(), queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(response->verdicts[i],
              snapshot_->verdict(net::Ipv4Address(queries[i])).bits)
        << "query " << i;
  }

  client.shutdown_write();
  EXPECT_FALSE(client.read_response().has_value());  // clean EOF
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.submitted_valid, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, ShedsExplicitlyWhenQueueOverflows) {
  ServerConfig config = calm_config();
  config.max_queue = 1;
  LookupServer server(engine_, config);
  LookupClient client(server.connect_client());
  ASSERT_TRUE(client.valid());

  // One contiguous burst so the worker decodes the whole flood before its
  // next processing pass: the bounded queue must answer the overflow with
  // SHED frames, never drop them.
  constexpr std::uint64_t kFrames = 64;
  std::string burst;
  const std::vector<std::uint32_t> batch{addr("1.0.0.1").value()};
  for (std::uint64_t b = 0; b < kFrames; ++b) {
    burst += encode_request(b, batch);
  }
  ASSERT_TRUE(client.send_bytes(burst));
  client.shutdown_write();

  std::uint64_t ok = 0, shed = 0;
  while (auto response = client.read_response()) {
    (response->status == ResponseStatus::kShed ? shed : ok) += 1;
  }
  EXPECT_EQ(ok + shed, kFrames);  // every frame answered, nothing silent
  EXPECT_GE(shed, 1u);
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted_valid, kFrames);
  EXPECT_EQ(stats.served, ok);
  EXPECT_EQ(stats.shed_total(), shed);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, EvictsStalledMidFrameClient) {
  ServerConfig config = calm_config();
  config.stall_timeout_ms = 50;
  LookupServer server(engine_, config);
  LookupClient client(server.connect_client());
  ASSERT_TRUE(client.valid());

  const std::string frame =
      encode_request(1, std::vector<std::uint32_t>{5, 6, 7});
  ASSERT_TRUE(client.send_bytes(
      std::string_view(frame).substr(0, frame.size() / 2)));
  // Slow-loris: hold the half-open frame; the server must cut us loose.
  EXPECT_FALSE(client.read_response().has_value());  // blocks until EOF
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.clients_evicted, 1u);
  EXPECT_EQ(stats.submitted_valid, 0u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, EvictsClientThatNeverReads) {
  ServerConfig config = calm_config();
  config.max_queue = 4096;
  config.max_outbound_bytes = 4096;
  LookupServer server(engine_, config);
  LookupClient client(server.connect_client());
  ASSERT_TRUE(client.valid());

  // Large batches, never reading a response: once the socket buffer and
  // then the bounded outbound buffer fill, the session must be evicted
  // rather than buffering without limit.
  std::vector<std::uint32_t> batch(kMaxFrameAddresses, addr("1.0.0.1").value());
  for (std::uint64_t b = 0; b < 4096; ++b) {
    if (!client.send_batch(b, batch)) break;  // EPIPE after eviction
  }
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.clients_evicted, 1u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, RejectsTornGarbageAndOversizedStreams) {
  LookupServer server(engine_, calm_config());
  {
    LookupClient torn(server.connect_client());
    const std::string frame =
        encode_request(1, std::vector<std::uint32_t>{5});
    ASSERT_TRUE(torn.send_bytes(
        std::string_view(frame).substr(0, frame.size() - 1)));
    torn.close_now();  // EOF lands mid-frame
  }
  {
    LookupClient garbage(server.connect_client());
    std::string wire =
        u32_bytes(static_cast<std::uint32_t>(kFrameHeaderBytes));
    wire += u32_bytes(0x0badf00du);
    wire.append(kFrameHeaderBytes - 4, '\0');
    ASSERT_TRUE(garbage.send_bytes(wire));
    EXPECT_FALSE(garbage.read_response().has_value());  // server closes
  }
  {
    LookupClient oversized(server.connect_client());
    ASSERT_TRUE(oversized.send_bytes(
        u32_bytes(static_cast<std::uint32_t>(kMaxFrameBytes + 1))));
    EXPECT_FALSE(oversized.read_response().has_value());
  }
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.rejected_torn, 1u);
  EXPECT_EQ(stats.rejected_garbage, 1u);
  EXPECT_EQ(stats.rejected_oversized, 1u);
  EXPECT_EQ(stats.submitted_valid, 0u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, DrainAnswersAcceptedWorkThenClosesSessions) {
  LookupServer server(engine_, calm_config(2));
  LookupClient client(server.connect_client());
  ASSERT_TRUE(client.valid());
  const std::vector<std::uint32_t> batch{addr("2.0.0.1").value()};
  for (std::uint64_t b = 0; b < 8; ++b) {
    ASSERT_TRUE(client.send_batch(b, batch));
    ASSERT_TRUE(client.read_response().has_value());
  }
  server.drain();
  // After drain the session is closed from the server side...
  EXPECT_FALSE(client.read_response().has_value());
  // ...no new clients are accepted...
  EXPECT_EQ(server.connect_client(), -1);
  // ...and drain is idempotent.
  server.drain();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.served, 8u);
  EXPECT_TRUE(stats.reconciles());
}

TEST_F(ServerTest, ReloadFallsBackToLastGoodOnCorruptArtifact) {
  const std::string good_path = "test_server_reload_good.bin";
  const std::string bad_path = "test_server_reload_bad.bin";
  const blocklist::SnapshotStore empty_store;
  const CompiledSnapshot empty =
      SnapshotBuilder().with_store(empty_store).build();
  ASSERT_TRUE(empty.save(good_path));
  {
    // A mid-write torso of the artifact: header promises more payload.
    std::ifstream in(good_path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    std::ofstream out(bad_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  LookupServer server(engine_, calm_config());
  std::string error;
  EXPECT_FALSE(server.reload(bad_path, &error));
  EXPECT_NE(error.find("snapshot load failed"), std::string::npos) << error;
  EXPECT_EQ(server.reload_failures(), 1u);
  EXPECT_EQ(server.reloads(), 0u);
  // Last-good still serving: the original snapshot's answers are intact.
  EXPECT_TRUE(engine_.verdict(addr("1.0.0.1")).listed());

  EXPECT_TRUE(server.reload(good_path, &error));
  EXPECT_EQ(server.reloads(), 1u);
  // The empty snapshot took over atomically.
  EXPECT_FALSE(engine_.verdict(addr("1.0.0.1")).listed());

  server.drain();
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST_F(ServerTest, ServedTalliesAreByteIdenticalAcrossWorkerCounts) {
  LoadConfig load;
  load.seed = 99;
  load.clients = 4;
  load.batches_per_client = 64;
  load.batch_size = 32;
  load.max_in_flight = 1;  // closed loop: nothing can shed, tallies exact

  std::uint64_t expected_listed = 0, expected_reused = 0;
  bool first = true;
  for (const int workers : {1, 2, 4}) {
    LookupEngine engine;
    engine.publish(snapshot_);
    LookupServer server(engine, calm_config(workers));
    const LoadReport report = run_load(server, *snapshot_, load);
    server.drain();
    const ServerStats stats = server.stats();

    EXPECT_EQ(report.shed, 0u) << workers << " workers";
    EXPECT_EQ(report.submitted,
              static_cast<std::uint64_t>(load.clients) *
                  load.batches_per_client)
        << workers << " workers";
    EXPECT_EQ(report.ok, report.submitted) << workers << " workers";
    EXPECT_TRUE(stats.reconciles());
    EXPECT_EQ(stats.served_listed, report.listed_words);
    EXPECT_EQ(stats.served_reused, report.reused_words);
    if (first) {
      expected_listed = stats.served_listed;
      expected_reused = stats.served_reused;
      EXPECT_GT(expected_listed, 0u);
      EXPECT_GT(expected_reused, 0u);
      first = false;
    } else {
      // The deterministic fault-free workload must tally identically no
      // matter how sessions shard across workers.
      EXPECT_EQ(stats.served_listed, expected_listed)
          << workers << " workers";
      EXPECT_EQ(stats.served_reused, expected_reused)
          << workers << " workers";
    }
  }
}

// ---------------------------------------------------------------------------
// ChaosClient plan (name matches the CI thread-sanitizer suite filter)

class ChaosServeTest : public ::testing::Test {
 protected:
  Fixture fx_;
  std::shared_ptr<const CompiledSnapshot> snapshot_ =
      std::make_shared<const CompiledSnapshot>(fx_.build());

  [[nodiscard]] static ServerConfig chaos_server_config() {
    ServerConfig config;
    config.workers = 2;
    config.max_queue = 4;  // small on purpose: floods must overflow it
    config.deadline_ms = 10'000;
    config.stall_timeout_ms = 50;  // bounds the stall clients' wait
    return config;
  }

  void reconcile_exactly(const ServerStats& stats, const ChaosLedger& ledger) {
    // The ledger laws: every injected fault accounted, category by
    // category, with totals matching exactly — not approximately.
    EXPECT_EQ(stats.rejected_torn, ledger.torn_sent);
    EXPECT_EQ(stats.rejected_garbage, ledger.garbage_sent);
    EXPECT_EQ(stats.rejected_oversized, ledger.oversized_sent);
    EXPECT_EQ(stats.clients_evicted, ledger.stalls);
    EXPECT_EQ(stats.submitted_valid, ledger.valid_sent);
    EXPECT_EQ(stats.served + stats.shed_total(), ledger.valid_sent);
    EXPECT_EQ(ledger.ok_received + ledger.shed_received, ledger.valid_sent);
    EXPECT_TRUE(stats.reconciles());
  }
};

TEST_F(ChaosServeTest, PlanCoversEveryBehaviorDeterministically) {
  for (int i = 0; i < kChaosBehaviorCount; ++i) {
    EXPECT_EQ(chaos_behavior_for(1, i), static_cast<ChaosBehavior>(i));
  }
  // The seeded tail is a pure function of (seed, index).
  for (int i = kChaosBehaviorCount; i < 32; ++i) {
    EXPECT_EQ(chaos_behavior_for(7, i), chaos_behavior_for(7, i));
  }
}

TEST_F(ChaosServeTest, LedgerReconcilesExactlyAtEveryClientCount) {
  for (const int clients : {6, 12, 24}) {
    LookupEngine engine;
    engine.publish(snapshot_);
    LookupServer server(engine, chaos_server_config());

    ChaosConfig config;
    config.seed = 0xc4a05;
    config.clients = clients;
    config.batches_per_client = 16;
    config.batch_size = 8;
    const ChaosLedger ledger = run_chaos_clients(server, *snapshot_, config);
    server.drain();

    // The first six clients cycle through all behaviors, so each fault
    // class is genuinely present at every tested count.
    EXPECT_GE(ledger.torn_sent, 1u) << clients << " clients";
    EXPECT_GE(ledger.garbage_sent, 1u) << clients << " clients";
    EXPECT_GE(ledger.oversized_sent, 1u) << clients << " clients";
    EXPECT_GE(ledger.stalls, 1u) << clients << " clients";
    EXPECT_GT(ledger.valid_sent, 0u) << clients << " clients";
    reconcile_exactly(server.stats(), ledger);
  }
}

TEST_F(ChaosServeTest, PublishStormDuringSoakKeepsReadersProgressing) {
  LookupEngine engine;
  engine.publish(snapshot_);
  LookupServer server(engine, chaos_server_config());

  const blocklist::SnapshotStore empty_store;
  auto alternate = std::make_shared<const CompiledSnapshot>(
      SnapshotBuilder().with_store(empty_store).build());

  // A publish storm while the chaos plan runs: each publish waits out the
  // epoch readers, so this exercises swap + synchronize under real
  // concurrent query traffic (the TSan target for the epoch protocol).
  std::atomic<bool> stop{false};
  std::thread storm([&] {
    for (int i = 0; !stop.load() && i < 400; ++i) {
      engine.publish(i % 2 == 0 ? alternate : snapshot_);
    }
  });

  ChaosConfig config;
  config.seed = 0x570a1;
  config.clients = 12;
  config.batches_per_client = 16;
  config.batch_size = 8;
  const ChaosLedger ledger = run_chaos_clients(server, *snapshot_, config);
  stop.store(true);
  storm.join();
  server.drain();

  // Readers made progress under the storm (no livelock) and the ledger
  // still reconciles exactly; which snapshot answered each query is
  // timing-dependent, the accounting is not.
  EXPECT_GT(ledger.ok_received, 0u);
  reconcile_exactly(server.stats(), ledger);
  EXPECT_NE(engine.snapshot(), nullptr);
}

}  // namespace
}  // namespace reuse::serve
