#include "netbase/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace reuse::net {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += a() == b();
  EXPECT_LT(equal, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent1(7);
  Rng parent2(7);
  Rng child1 = parent1.fork(42);
  Rng child2 = parent2.fork(42);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child1(), child2());
  Rng other = parent1.fork(43);
  int equal = 0;
  for (int i = 0; i < 50; ++i) equal += child1() == other();
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform(17), 17u);
  }
  // All residues reachable.
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t draw = rng.uniform_int(-3, 3);
    EXPECT_GE(draw, -3);
    EXPECT_LE(draw, 3);
    saw_low |= draw == -3;
    saw_high |= draw == 3;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(Rng, UniformRealInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double draw = rng.uniform_real();
    EXPECT_GE(draw, 0.0);
    EXPECT_LT(draw, 1.0);
    sum += draw;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(12);
  double sum = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(5.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.15);
}

TEST(Rng, NormalMatchesMoments) {
  Rng rng(13);
  double sum = 0.0;
  double sum_sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double draw = rng.normal(10.0, 2.0);
    sum += draw;
    sum_sq += draw * draw;
  }
  const double mean = sum / kN;
  const double variance = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(variance), 2.0, 0.1);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(14);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
  }
}

TEST(Rng, GeometricMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  constexpr int kN = 50000;
  const double p = 0.4;
  for (int i = 0; i < kN; ++i) {
    sum += static_cast<double>(rng.geometric(p));
  }
  EXPECT_NEAR(sum / kN, (1 - p) / p, 0.05);
  EXPECT_EQ(Rng(1).geometric(1.0), 0u);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(16);
  for (const double mean : {0.5, 5.0, 80.0}) {
    double sum = 0.0;
    constexpr int kN = 20000;
    for (int i = 0; i < kN; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / kN, mean, mean * 0.05 + 0.05) << "mean " << mean;
  }
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ZipfStaysInRangeAndFavorsLowRanks) {
  Rng rng(17);
  std::uint64_t ones = 0;
  std::uint64_t top_half = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const std::uint64_t draw = rng.zipf(100, 1.2);
    ASSERT_GE(draw, 1u);
    ASSERT_LE(draw, 100u);
    ones += draw == 1;
    top_half += draw > 50;
  }
  EXPECT_GT(ones, top_half);  // rank 1 alone beats the entire top half
  EXPECT_EQ(rng.zipf(1, 1.0), 1u);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng rng(18);
  const double weights[] = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  constexpr int kN = 40000;
  for (int i = 0; i < kN; ++i) ++counts[rng.weighted_index(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / kN, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / kN, 0.75, 0.02);
  EXPECT_THROW((void)rng.weighted_index(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
}

TEST(Rng, SampleIndicesAreDistinctAndInRange) {
  Rng rng(19);
  for (const std::size_t n : {std::size_t{10}, std::size_t{100}, std::size_t{1000}}) {
    for (const std::size_t k : {std::size_t{0}, std::size_t{1}, n / 2, n}) {
      const auto sample = rng.sample_indices(n, k);
      EXPECT_EQ(sample.size(), k);
      std::unordered_set<std::size_t> seen(sample.begin(), sample.end());
      EXPECT_EQ(seen.size(), k);
      for (const std::size_t index : sample) EXPECT_LT(index, n);
    }
  }
  EXPECT_THROW((void)rng.sample_indices(3, 4), std::invalid_argument);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(20);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, items);
}

}  // namespace
}  // namespace reuse::net
