// The Section-5 joins on handcrafted inputs with exactly known answers.
#include "analysis/impact.h"

#include <gtest/gtest.h>

#include "analysis/greylist.h"
#include "blocklist/catalogue.h"

namespace reuse::analysis {
namespace {

net::Ipv4Address addr(const char* text) { return *net::Ipv4Address::parse(text); }

blocklist::BlocklistInfo list_info(blocklist::ListId id) {
  blocklist::BlocklistInfo info;
  info.id = id;
  info.name = "list-" + std::to_string(id);
  return info;
}

// Fixture: 3 lists; addresses A (NATed), B (dynamic), C (plain), D (both).
class ImpactFixture : public ::testing::Test {
 protected:
  ImpactFixture() {
    catalogue_ = {list_info(1), list_info(2), list_info(3)};
    // List 1: A for days 0..3, C for day 0.
    store_.record(1, a_, 0);
    store_.record(1, a_, 1);
    store_.record(1, a_, 2);
    store_.record(1, c_, 0);
    // List 2: A day 5 (re-listing), B days 0..1, D day 0.
    store_.record(2, a_, 5);
    store_.record(2, b_, 0);
    store_.record(2, b_, 1);
    store_.record(2, d_, 0);
    // List 3: empty.
    nated_ = {a_, d_};
    dynamic_.insert(net::Ipv4Prefix::slash24_of(b_));
    dynamic_.insert(net::Ipv4Prefix::slash24_of(d_));
  }

  net::Ipv4Address a_ = addr("10.0.0.1");
  net::Ipv4Address b_ = addr("10.0.1.1");
  net::Ipv4Address c_ = addr("10.0.2.1");
  net::Ipv4Address d_ = addr("10.0.3.1");
  blocklist::SnapshotStore store_;
  std::vector<blocklist::BlocklistInfo> catalogue_;
  std::unordered_set<net::Ipv4Address> nated_;
  net::PrefixSet dynamic_;
};

TEST_F(ImpactFixture, ReuseImpactCountsExactly) {
  const ReuseImpact impact =
      compute_reuse_impact(store_, catalogue_, nated_, dynamic_);
  EXPECT_EQ(impact.lists_total, 3u);
  EXPECT_EQ(impact.total_listings, 5u);  // (1,A),(1,C),(2,A),(2,B),(2,D)
  EXPECT_EQ(impact.nated_listings, 3u);  // (1,A),(2,A),(2,D)
  EXPECT_EQ(impact.dynamic_listings, 2u);  // (2,B),(2,D)
  EXPECT_EQ(impact.lists_with_nated, 2u);
  EXPECT_EQ(impact.lists_with_dynamic, 1u);
  EXPECT_EQ(impact.nated_blocklisted_addresses, 2u);   // A, D
  EXPECT_EQ(impact.dynamic_blocklisted_addresses, 2u); // B, D
  EXPECT_NEAR(impact.fraction_lists_with_nated(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(impact.fraction_lists_with_dynamic(), 1.0 / 3.0, 1e-12);
  ASSERT_EQ(impact.per_list.size(), 3u);
  EXPECT_EQ(impact.per_list[0].total_addresses, 2u);
  EXPECT_EQ(impact.per_list[0].nated_addresses, 1u);
  EXPECT_EQ(impact.per_list[2].total_addresses, 0u);
}

TEST_F(ImpactFixture, ListingDurationsPerSpell) {
  const ListingDurations durations =
      compute_listing_durations(store_, nated_, dynamic_);
  // Spells: (1,A):3d; (1,C):1d; (2,A):1d; (2,B):2d; (2,D):1d -> 5 spells.
  EXPECT_EQ(durations.all_days.size(), 5u);
  // NATed spells: A's two + D's one.
  EXPECT_EQ(durations.nated_days.size(), 3u);
  EXPECT_EQ(durations.dynamic_days.size(), 2u);
  double total = 0;
  for (const double d : durations.all_days) total += d;
  EXPECT_DOUBLE_EQ(total, 8.0);
}

TEST_F(ImpactFixture, UsersBehindBlocklistedNats) {
  const std::vector<std::pair<net::Ipv4Address, std::size_t>> nated = {
      {a_, 3}, {d_, 2}, {addr("99.99.99.99"), 78}};  // last one not blocklisted
  const net::IntDistribution users = users_behind_blocklisted_nats(store_, nated);
  EXPECT_EQ(users.total(), 2);
  EXPECT_EQ(users.max_value(), 3);
  EXPECT_DOUBLE_EQ(users.fraction_at_most(2), 0.5);
}

TEST_F(ImpactFixture, TopListsRankByClassListings) {
  const ReuseImpact impact =
      compute_reuse_impact(store_, catalogue_, nated_, dynamic_);
  const auto top_nat = top_lists_by(impact, catalogue_, /*nated=*/true, 2);
  ASSERT_EQ(top_nat.size(), 2u);
  EXPECT_EQ(top_nat[0].listings, 2u);  // list 2 has A and D
  EXPECT_EQ(top_nat[0].name, "list-2");
  const auto top_dyn = top_lists_by(impact, catalogue_, /*nated=*/false, 1);
  ASSERT_EQ(top_dyn.size(), 1u);
  EXPECT_EQ(top_dyn[0].list, 2u);
}

TEST_F(ImpactFixture, GreylistSplitsReusedFromPlain) {
  const auto reused = build_reused_address_list(store_, nated_, dynamic_);
  ASSERT_EQ(reused.size(), 3u);  // A, B, D (sorted by address)
  EXPECT_EQ(reused[0].address, a_);
  EXPECT_TRUE(reused[0].nated);
  EXPECT_FALSE(reused[0].dynamic);
  EXPECT_TRUE(reused[2].nated);
  EXPECT_TRUE(reused[2].dynamic);

  const GreylistSplit split =
      split_for_greylisting({a_, b_, c_, d_}, reused);
  EXPECT_EQ(split.greylist.size(), 3u);
  ASSERT_EQ(split.block.size(), 1u);
  EXPECT_EQ(split.block[0], c_);
}

TEST(AsCoverage, CurvesAreCumulativeAndPlateau) {
  // Build a tiny world for AS attribution.
  const inet::World world(inet::test_world_config(31));
  blocklist::SnapshotStore store;
  std::unordered_map<net::Ipv4Address, crawler::IpEvidence> discovered;
  net::PrefixSet probe_prefixes;
  // Blocklist one address in each of the first 6 ASes; mark the first two
  // as BitTorrent-observed and the third as probe-covered.
  int index = 0;
  for (const auto& as_info : world.ases()) {
    if (as_info.prefixes.empty()) continue;
    const net::Ipv4Address address = as_info.prefixes[0].address_at(1);
    store.record(1, address, 0);
    if (index < 2) discovered[address] = crawler::IpEvidence{};
    if (index == 2) probe_prefixes.insert(net::Ipv4Prefix::slash24_of(address));
    if (++index == 6) break;
  }
  const AsCoverage coverage =
      compute_as_coverage(world, store, discovered, probe_prefixes);
  EXPECT_EQ(coverage.ases_with_blocklisted, 6u);
  EXPECT_EQ(coverage.ases_with_bittorrent, 2u);
  EXPECT_EQ(coverage.ases_with_ripe, 1u);
  const auto blocklisted_curve = coverage.curve_blocklisted();
  ASSERT_EQ(blocklisted_curve.size(), 6u);
  EXPECT_DOUBLE_EQ(blocklisted_curve.back().second, 1.0);
  const auto bt_curve = coverage.curve_bittorrent();
  EXPECT_NEAR(bt_curve.back().second, 2.0 / 6.0, 1e-12);
  const auto ripe_curve = coverage.curve_ripe();
  EXPECT_NEAR(ripe_curve.back().second, 1.0 / 6.0, 1e-12);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < bt_curve.size(); ++i) {
    EXPECT_GE(bt_curve[i].second, bt_curve[i - 1].second);
  }
}

TEST(Validation, PrecisionAgainstGroundTruth) {
  const inet::World world(inet::test_world_config(33));
  // Find one genuinely shared address and one dedicated one.
  net::Ipv4Address shared;
  for (const auto& group : world.nat_groups()) {
    if (group.members.size() >= 2) {
      shared = group.public_address;
      break;
    }
  }
  net::Ipv4Address dedicated;
  for (const auto& user : world.users()) {
    if (user.attachment == inet::AttachmentKind::kStatic) {
      dedicated = user.fixed_address;
      break;
    }
  }
  const DetectorValidation good = validate_nat_detection(world, {shared});
  EXPECT_EQ(good.detected, 1u);
  EXPECT_DOUBLE_EQ(good.precision(), 1.0);
  const DetectorValidation mixed =
      validate_nat_detection(world, {shared, dedicated});
  EXPECT_DOUBLE_EQ(mixed.precision(), 0.5);
  const DetectorValidation empty = validate_nat_detection(world, {});
  EXPECT_DOUBLE_EQ(empty.precision(), 1.0);

  net::PrefixSet dynamic;
  dynamic.insert(world.dynamic_prefixes().to_vector().front());
  dynamic.insert(*net::Ipv4Prefix::parse("200.200.200.0/24"));
  const DetectorValidation dyn = validate_dynamic_detection(world, dynamic);
  EXPECT_EQ(dyn.detected, 2u);
  EXPECT_EQ(dyn.true_positives, 1u);
}

}  // namespace
}  // namespace reuse::analysis
