// The compiled serving snapshot: build semantics, byte determinism,
// round-trip framing, and hostile-file rejection.
#include "serve/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "netbase/thread_pool.h"
#include "serve/lookup.h"
#include "serve/workload.h"

namespace reuse::serve {
namespace {

net::Ipv4Address addr(const char* text) {
  return *net::Ipv4Address::parse(text);
}

net::Ipv4Prefix prefix(const char* text) {
  return *net::Ipv4Prefix::parse(text);
}

/// A small hand-built world with every verdict class represented:
/// listed-only, listed+NATed, listed+dynamic, NATed-but-unlisted, and a
/// dynamic /24 with no entries at all.
struct Fixture {
  blocklist::SnapshotStore store;
  std::unordered_set<net::Ipv4Address> nated;
  net::PrefixSet dynamic;
  std::vector<blocklist::BlocklistInfo> catalogue;

  Fixture() {
    store.record(1, addr("1.0.0.1"), 0);  // listed only
    store.record(1, addr("2.0.0.1"), 0);  // listed + NATed
    store.record(2, addr("2.0.0.1"), 1);
    store.record(2, addr("3.0.0.1"), 0);  // listed + dynamic /24
    nated.insert(addr("2.0.0.1"));
    nated.insert(addr("9.0.0.9"));  // NATed, never listed
    dynamic.insert(prefix("3.0.0.0/24"));
    dynamic.insert(prefix("7.0.0.0/23"));  // no entries; context only
    catalogue.push_back({1, "list-1", "m", blocklist::ListCategory::kReputation,
                         0.1, 5.0, false});
    catalogue.push_back({2, "list-2", "m", blocklist::ListCategory::kReputation,
                         0.1, 5.0, false});
  }

  [[nodiscard]] CompiledSnapshot build(net::ThreadPool* pool = nullptr) const {
    return SnapshotBuilder()
        .with_store(store)
        .with_nated(nated)
        .with_dynamic(dynamic)
        .with_catalogue(catalogue)
        .with_source_fingerprint(0xabcdef01ULL)
        .build(pool);
  }
};

std::string file_bytes(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return buffer.str();
}

class ServeArtifact : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = std::string("test_serve_") +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST(ServeSnapshot, VerdictSemantics) {
  const Fixture fx;
  const CompiledSnapshot snapshot = fx.build();
  // Entries: 3 distinct listed addresses + 1 NATed-unlisted.
  EXPECT_EQ(snapshot.entry_count(), 4u);
  // /24s with dynamic context: 3.0.0.0/24 plus both halves of 7.0.0.0/23.
  EXPECT_EQ(snapshot.dynamic24_count(), 3u);

  const Verdict listed_only = snapshot.verdict(addr("1.0.0.1"));
  EXPECT_TRUE(listed_only.listed());
  EXPECT_FALSE(listed_only.reused());
  EXPECT_FALSE(listed_only.greylist());

  const Verdict listed_nated = snapshot.verdict(addr("2.0.0.1"));
  EXPECT_TRUE(listed_nated.listed());
  EXPECT_TRUE(listed_nated.nated());
  EXPECT_FALSE(listed_nated.dynamic());
  EXPECT_TRUE(listed_nated.greylist());

  const Verdict listed_dynamic = snapshot.verdict(addr("3.0.0.1"));
  EXPECT_TRUE(listed_dynamic.listed());
  EXPECT_FALSE(listed_dynamic.nated());
  EXPECT_TRUE(listed_dynamic.dynamic());
  EXPECT_TRUE(listed_dynamic.greylist());

  const Verdict nated_unlisted = snapshot.verdict(addr("9.0.0.9"));
  EXPECT_FALSE(nated_unlisted.listed());
  EXPECT_TRUE(nated_unlisted.nated());
  EXPECT_FALSE(nated_unlisted.greylist());

  // Dynamic context reaches addresses with no entry at all — including a
  // /23 pool expanded to both covered /24s.
  EXPECT_TRUE(snapshot.verdict(addr("7.0.0.200")).dynamic());
  EXPECT_TRUE(snapshot.verdict(addr("7.0.1.7")).dynamic());
  EXPECT_FALSE(snapshot.verdict(addr("7.0.2.7")).dynamic());
  // Same /24 as a listed entry, different host: dynamic context, no listing.
  const Verdict neighbour = snapshot.verdict(addr("3.0.0.99"));
  EXPECT_FALSE(neighbour.listed());
  EXPECT_TRUE(neighbour.dynamic());

  const Verdict clean = snapshot.verdict(addr("200.1.2.3"));
  EXPECT_EQ(clean.bits, 0u);
}

TEST(ServeSnapshot, TopListBitmapRanksByAddressCount) {
  const Fixture fx;
  const CompiledSnapshot snapshot = fx.build();
  // list 1 and list 2 both hold 2 distinct addresses; the tie breaks toward
  // the smaller id, so bit 0 = list 1, bit 1 = list 2.
  ASSERT_EQ(snapshot.top_lists().size(), 2u);
  EXPECT_EQ(snapshot.top_lists()[0], 1u);
  EXPECT_EQ(snapshot.top_lists()[1], 2u);
  EXPECT_EQ(snapshot.verdict(addr("1.0.0.1")).list_bitmap(), 0b01u);
  EXPECT_EQ(snapshot.verdict(addr("2.0.0.1")).list_bitmap(), 0b11u);
  EXPECT_EQ(snapshot.verdict(addr("3.0.0.1")).list_bitmap(), 0b10u);
  EXPECT_EQ(snapshot.verdict(addr("9.0.0.9")).list_bitmap(), 0u);
}

TEST(ServeSnapshot, BatchMatchesPointQueries) {
  const Fixture fx;
  const CompiledSnapshot snapshot = fx.build();
  const std::vector<net::Ipv4Address> queries{
      addr("1.0.0.1"), addr("2.0.0.1"), addr("3.0.0.99"), addr("200.1.2.3"),
      addr("9.0.0.9")};
  std::vector<Verdict> batch(queries.size());
  snapshot.verdict_batch(queries, batch);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batch[i], snapshot.verdict(queries[i])) << "query " << i;
  }
}

TEST(ServeSnapshot, EmptyInputsProduceServableEmptySnapshot) {
  const blocklist::SnapshotStore store;
  const CompiledSnapshot snapshot =
      SnapshotBuilder().with_store(store).build();
  EXPECT_EQ(snapshot.entry_count(), 0u);
  EXPECT_EQ(snapshot.bucket_count(), 0u);
  EXPECT_EQ(snapshot.verdict(addr("1.2.3.4")).bits, 0u);
  EXPECT_TRUE(snapshot.entries_matching(kVerdictListed).empty());
}

TEST(ServeSnapshot, EntriesMatchingFiltersByMask) {
  const Fixture fx;
  const CompiledSnapshot snapshot = fx.build();
  const auto listed = snapshot.entries_matching(kVerdictListed);
  EXPECT_EQ(listed.size(), 3u);
  const auto nated = snapshot.entries_matching(kVerdictNated);
  EXPECT_EQ(nated.size(), 2u);
  const auto greylist =
      snapshot.entries_matching(kVerdictListed | kVerdictNated);
  ASSERT_EQ(greylist.size(), 1u);
  EXPECT_EQ(greylist[0], addr("2.0.0.1"));
  // Results come back sorted (they index a sorted array).
  EXPECT_TRUE(std::is_sorted(listed.begin(), listed.end()));
}

TEST_F(ServeArtifact, ParallelBuildIsByteIdenticalToSerial) {
  const Fixture fx;
  const CompiledSnapshot serial = fx.build(nullptr);
  net::ThreadPool pool(8);
  const CompiledSnapshot parallel = fx.build(&pool);
  EXPECT_EQ(serial.fingerprint(), parallel.fingerprint());

  ASSERT_TRUE(serial.save(path_));
  const std::string serial_bytes = file_bytes(path_);
  ASSERT_TRUE(parallel.save(path_));
  EXPECT_EQ(serial_bytes, file_bytes(path_));
  EXPECT_FALSE(serial_bytes.empty());
}

TEST_F(ServeArtifact, RoundTripPreservesEveryVerdict) {
  const Fixture fx;
  const CompiledSnapshot original = fx.build();
  ASSERT_TRUE(original.save(path_));
  const auto loaded = CompiledSnapshot::load(path_);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->fingerprint(), original.fingerprint());
  EXPECT_EQ(loaded->source_fingerprint(), 0xabcdef01ULL);
  EXPECT_EQ(loaded->entry_count(), original.entry_count());
  EXPECT_EQ(loaded->top_lists(), original.top_lists());
  for (const char* text : {"1.0.0.1", "2.0.0.1", "3.0.0.1", "3.0.0.99",
                           "9.0.0.9", "7.0.1.7", "200.1.2.3"}) {
    EXPECT_EQ(loaded->verdict(addr(text)), original.verdict(addr(text)))
        << text;
  }
}

TEST_F(ServeArtifact, RejectsMissingTruncatedAndCorruptFiles) {
  EXPECT_FALSE(CompiledSnapshot::load(path_).has_value());  // missing

  const Fixture fx;
  ASSERT_TRUE(fx.build().save(path_));
  const std::string good = file_bytes(path_);
  ASSERT_GT(good.size(), 64u);

  auto write_variant = [&](const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Truncation at several depths: inside the header and inside the payload.
  for (const std::size_t keep :
       {std::size_t{8}, std::size_t{40}, good.size() / 2, good.size() - 1}) {
    write_variant(good.substr(0, keep));
    EXPECT_FALSE(CompiledSnapshot::load(path_).has_value())
        << "truncated to " << keep;
  }
  // Trailing garbage after a valid image.
  write_variant(good + "x");
  EXPECT_FALSE(CompiledSnapshot::load(path_).has_value());
  // A bit flip anywhere in the payload breaks the checksum; in the header,
  // the magic/version/size checks.
  for (const std::size_t at :
       {std::size_t{0}, std::size_t{9}, std::size_t{48}, good.size() - 3}) {
    std::string bad = good;
    bad[at] = static_cast<char>(bad[at] ^ 0x20);
    write_variant(bad);
    EXPECT_FALSE(CompiledSnapshot::load(path_).has_value())
        << "bit flip at " << at;
  }
  // And the pristine bytes still load (the harness itself is sound).
  write_variant(good);
  EXPECT_TRUE(CompiledSnapshot::load(path_).has_value());
}

TEST(ServeEngine, RejectsNullPublishWithClearError) {
  LookupEngine engine;
  // "Serve nothing" is expressed with an *empty* snapshot; a null must
  // never reach the read path where it would look like "before first
  // publish" and silently answer all-clear.
  EXPECT_THROW(engine.publish(nullptr), std::invalid_argument);
  // The engine is untouched by the rejected call.
  EXPECT_EQ(engine.snapshot(), nullptr);

  const Fixture fx;
  engine.publish(std::make_shared<const CompiledSnapshot>(fx.build()));
  EXPECT_THROW(engine.publish(nullptr), std::invalid_argument);
  // Still serving what the last valid publish installed.
  EXPECT_TRUE(engine.verdict(addr("1.0.0.1")).listed());
}

TEST_F(ServeArtifact, RejectionMatrixYieldsDistinctDiagnostics) {
  const Fixture fx;
  ASSERT_TRUE(fx.build().save(path_));
  const std::string good = file_bytes(path_);

  auto diagnose = [&](const std::string& at) {
    std::string error;
    EXPECT_FALSE(CompiledSnapshot::load(at, &error).has_value());
    return error;
  };
  auto write_variant = [&](const std::string& bytes) {
    std::ofstream os(path_, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // Each failure mode must fail closed with its *own* message, so an
  // operator staring at a failed reload knows which one hit.
  const std::string missing = diagnose(path_ + ".nope");
  EXPECT_NE(missing.find("does not exist"), std::string::npos) << missing;

  const std::string directory = diagnose(".");
  EXPECT_NE(directory.find("not a regular file"), std::string::npos)
      << directory;

  write_variant("");  // a crashed writer's just-created tmp file
  const std::string zero = diagnose(path_);
  EXPECT_NE(zero.find("zero-length"), std::string::npos) << zero;

  write_variant(good.substr(0, 12));  // died inside the header
  const std::string header = diagnose(path_);
  EXPECT_NE(header.find("header"), std::string::npos) << header;

  write_variant(good.substr(0, good.size() / 2));  // died inside the payload
  const std::string payload = diagnose(path_);
  EXPECT_NE(payload.find("truncated payload"), std::string::npos) << payload;

  write_variant(good + "x");
  const std::string trailing = diagnose(path_);
  EXPECT_NE(trailing.find("trailing bytes"), std::string::npos) << trailing;

  std::string flipped = good;
  flipped[good.size() - 3] = static_cast<char>(flipped[good.size() - 3] ^ 0x20);
  write_variant(flipped);
  const std::string checksum = diagnose(path_);
  EXPECT_NE(checksum.find("checksum mismatch"), std::string::npos) << checksum;

  std::string bad_magic = good;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x20);
  write_variant(bad_magic);
  const std::string magic = diagnose(path_);
  EXPECT_NE(magic.find("bad magic"), std::string::npos) << magic;

  // All eight diagnostics are pairwise distinct — no two modes collapse.
  const std::vector<std::string> all{missing, directory, zero,     header,
                                     payload, trailing,  checksum, magic};
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i], all[j]) << "modes " << i << " and " << j;
    }
  }

  // And the pristine bytes still load, with no error text written.
  write_variant(good);
  std::string error = "untouched";
  EXPECT_TRUE(CompiledSnapshot::load(path_, &error).has_value());
  EXPECT_EQ(error, "untouched");
}

TEST(ServeEngine, PublishSwapsAnswersAtomically) {
  const Fixture fx;
  LookupEngine engine;
  EXPECT_EQ(engine.snapshot(), nullptr);

  auto first = std::make_shared<const CompiledSnapshot>(fx.build());
  engine.publish(first);
  EXPECT_TRUE(engine.verdict(addr("1.0.0.1")).listed());

  // Swap to an empty snapshot: the old answers must vanish entirely.
  const blocklist::SnapshotStore empty_store;
  auto empty = std::make_shared<const CompiledSnapshot>(
      SnapshotBuilder().with_store(empty_store).build());
  engine.publish(empty);
  EXPECT_FALSE(engine.verdict(addr("1.0.0.1")).listed());
  EXPECT_EQ(engine.snapshot()->entry_count(), 0u);
}

TEST(ServeWorkload, TalliesAreDeterministicAcrossThreadCounts) {
  const Fixture fx;
  auto snapshot = std::make_shared<const CompiledSnapshot>(fx.build());
  LookupEngine engine;
  engine.publish(snapshot);

  WorkloadConfig config;
  config.seed = 42;
  config.query_count = 20'000;
  config.batch_size = 32;

  config.threads = 1;
  const WorkloadReport serial = run_workload(engine, *snapshot, config);
  config.threads = 4;
  const WorkloadReport parallel = run_workload(engine, *snapshot, config);

  EXPECT_EQ(serial.queries, 20'000u);
  EXPECT_GT(serial.listed_hits, 0u);
  EXPECT_GT(serial.reused_hits, 0u);
  // The query stream is a pure function of (seed, batch index), so the
  // verdict tallies cannot depend on how batches landed on threads.
  EXPECT_EQ(serial.listed_hits, parallel.listed_hits);
  EXPECT_EQ(serial.reused_hits, parallel.reused_hits);
  EXPECT_FALSE(serial.swapped);
  EXPECT_GT(serial.throughput_qps, 0.0);
  EXPECT_GE(serial.p99_nanos, serial.p50_nanos);
  EXPECT_GE(serial.max_nanos, serial.p99_nanos);
}

TEST(ServeWorkload, MidRunSwapToEquivalentSnapshotKeepsTallies) {
  const Fixture fx;
  auto snapshot = std::make_shared<const CompiledSnapshot>(fx.build());
  LookupEngine engine;
  engine.publish(snapshot);

  WorkloadConfig config;
  config.seed = 42;
  config.query_count = 20'000;
  config.batch_size = 32;
  config.threads = 2;
  const WorkloadReport baseline = run_workload(engine, *snapshot, config);

  engine.publish(snapshot);
  config.swap_to = std::make_shared<const CompiledSnapshot>(fx.build());
  const WorkloadReport swapped = run_workload(engine, *snapshot, config);
  EXPECT_TRUE(swapped.swapped);
  // The swapped-in snapshot answers identically, so the deterministic
  // tallies survive a reload under traffic.
  EXPECT_EQ(swapped.listed_hits, baseline.listed_hits);
  EXPECT_EQ(swapped.reused_hits, baseline.reused_hits);
}

}  // namespace
}  // namespace reuse::serve
