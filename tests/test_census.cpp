#include "census/census.h"

#include <gtest/gtest.h>

namespace reuse::census {
namespace {

TEST(AddressMetrics, AllUpSequence) {
  const AddressMetrics metrics =
      metrics_from_sequence(std::vector<bool>(10, true), net::Duration::hours(1));
  EXPECT_EQ(metrics.probes, 10u);
  EXPECT_EQ(metrics.responses, 10u);
  EXPECT_DOUBLE_EQ(metrics.availability(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.volatility(), 0.0);
  EXPECT_EQ(metrics.median_uptime_seconds, 10 * 3600);
}

TEST(AddressMetrics, AllDownSequence) {
  const AddressMetrics metrics =
      metrics_from_sequence(std::vector<bool>(10, false), net::Duration::hours(1));
  EXPECT_DOUBLE_EQ(metrics.availability(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.volatility(), 0.0);
  EXPECT_EQ(metrics.median_uptime_seconds, 0);
}

TEST(AddressMetrics, AlternatingSequenceIsMaximallyVolatile) {
  std::vector<bool> responses;
  for (int i = 0; i < 10; ++i) responses.push_back(i % 2 == 0);
  const AddressMetrics metrics =
      metrics_from_sequence(responses, net::Duration::hours(1));
  EXPECT_DOUBLE_EQ(metrics.availability(), 0.5);
  EXPECT_DOUBLE_EQ(metrics.volatility(), 1.0);
  EXPECT_EQ(metrics.median_uptime_seconds, 3600);
}

TEST(AddressMetrics, UptimeRunsAreMeasured) {
  // up up up down up down -> runs of 3h and 1h, median = 3h (upper median).
  const std::vector<bool> responses{true, true, true, false, true, false};
  const AddressMetrics metrics =
      metrics_from_sequence(responses, net::Duration::hours(1));
  EXPECT_EQ(metrics.median_uptime_seconds, 3 * 3600);
  EXPECT_EQ(metrics.transitions, 3u);
}

TEST(AddressMetrics, EmptySequence) {
  const AddressMetrics metrics =
      metrics_from_sequence({}, net::Duration::hours(1));
  EXPECT_EQ(metrics.probes, 0u);
  EXPECT_DOUBLE_EQ(metrics.availability(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.volatility(), 0.0);
}

TEST(DynamicBlockRule, ClassifiesByThresholds) {
  BlockMetrics metrics;
  metrics.responsive_addresses = 100;
  metrics.mean_availability = 0.35;  // idle between leases
  metrics.mean_volatility = 0.03;    // lease-rate flips
  metrics.median_uptime_seconds = 86400;
  EXPECT_TRUE(is_dynamic_block(metrics));

  BlockMetrics stable = metrics;
  stable.mean_availability = 0.99;  // servers / middlebox replies
  EXPECT_FALSE(is_dynamic_block(stable));

  BlockMetrics residential = metrics;
  residential.mean_availability = 0.62;  // always-on + diurnal host mix
  EXPECT_FALSE(is_dynamic_block(residential));

  BlockMetrics quiet = metrics;
  quiet.responsive_addresses = 2;  // too sparse to judge
  EXPECT_FALSE(is_dynamic_block(quiet));

  BlockMetrics frozen = metrics;
  frozen.mean_volatility = 0.0;  // never flips at all
  EXPECT_FALSE(is_dynamic_block(frozen));

  BlockMetrics thrashing = metrics;
  thrashing.mean_volatility = 0.9;  // responds at random: measurement noise
  EXPECT_FALSE(is_dynamic_block(thrashing));

  BlockMetrics longlease = metrics;
  longlease.median_uptime_seconds = 30 * 86400;
  EXPECT_FALSE(is_dynamic_block(longlease));
}

class CensusOnWorld : public ::testing::Test {
 protected:
  static const inet::World& world() {
    static const inet::World kWorld(inet::test_world_config(21));
    return kWorld;
  }
  static const CensusResult& result() {
    static const CensusResult kResult = [] {
      CensusConfig config;
      config.seed = 5;
      config.block_sample_fraction = 0.5;
      config.window = {net::SimTime(0), net::SimTime(7 * 86400)};
      return run_census(world(), config);
    }();
    return kResult;
  }
};

TEST_F(CensusOnWorld, SurveysTheRequestedSample) {
  std::size_t total_blocks = 0;
  for (const auto& as_info : world().ases()) {
    total_blocks += as_info.prefixes.size();
  }
  EXPECT_EQ(result().blocks_surveyed, total_blocks / 2);
  EXPECT_GT(result().probes_sent, 0u);
  EXPECT_GT(result().responses, 0u);
  EXPECT_LT(result().responses, result().probes_sent);
}

TEST_F(CensusOnWorld, IcmpFilteredAsesNeverRespond) {
  const inet::PingModel model(world(), 999);
  for (const auto& as_info : world().ases()) {
    if (!as_info.filters_icmp) continue;
    for (const auto& prefix : as_info.prefixes) {
      EXPECT_FALSE(model.responds(prefix.address_at(10), net::SimTime(0)));
    }
    break;  // one AS suffices
  }
}

TEST_F(CensusOnWorld, DynamicBlocksAreMostlyRealDynamicPools) {
  std::size_t hits = 0;
  std::size_t total = 0;
  for (const auto& prefix : result().dynamic_blocks.to_vector()) {
    ++total;
    hits += world().dynamic_prefixes().contains_prefix(prefix);
  }
  if (total == 0) GTEST_SKIP() << "no dynamic blocks detected at this scale";
  // The census is the *noisy baseline*: most (not necessarily all) of its
  // calls should be real dynamic pools.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.6);
}

TEST_F(CensusOnWorld, CgnBlocksLookStatic) {
  // Middlebox replies make CGN space look like stable hosts; the census must
  // NOT classify CGN /24s as dynamic (a documented failure mode).
  for (const auto& block : result().blocks) {
    if (world().role_of(block.block.network()) == inet::PrefixRole::kCgnPool) {
      EXPECT_FALSE(result().dynamic_blocks.contains_prefix(block.block))
          << block.block.to_string();
    }
  }
}

TEST_F(CensusOnWorld, BlockMetricsAreWellFormed) {
  for (const auto& block : result().blocks) {
    EXPECT_GE(block.responsive_addresses, 1u);
    EXPECT_LE(block.responsive_addresses, 256u);
    EXPECT_GE(block.mean_availability, 0.0);
    EXPECT_LE(block.mean_availability, 1.0);
    EXPECT_GE(block.mean_volatility, 0.0);
    EXPECT_LE(block.mean_volatility, 1.0);
  }
}

TEST(PingModel, IsDeterministic) {
  const inet::World world(inet::test_world_config(22));
  const inet::PingModel a(world, 1);
  const inet::PingModel b(world, 1);
  const inet::PingModel c(world, 2);
  int diverged = 0;
  for (const auto& as_info : world.ases()) {
    for (const auto& prefix : as_info.prefixes) {
      for (int offset = 0; offset < 8; ++offset) {
        const auto address = prefix.address_at(static_cast<std::uint64_t>(offset) * 31);
        for (int hour = 0; hour < 4; ++hour) {
          const net::SimTime t(hour * 3600);
          ASSERT_EQ(a.responds(address, t), b.responds(address, t));
          diverged += a.responds(address, t) != c.responds(address, t);
        }
      }
    }
  }
  EXPECT_GT(diverged, 0);
}

TEST(PingModel, UnusedSpaceIsDark) {
  const inet::World world(inet::test_world_config(23));
  const inet::PingModel model(world, 7);
  EXPECT_FALSE(model.responds(net::Ipv4Address(1), net::SimTime(0)));
  for (const auto& as_info : world.ases()) {
    for (std::size_t i = 0; i < as_info.prefixes.size(); ++i) {
      if (as_info.roles[i] == inet::PrefixRole::kUnused) {
        for (int offset = 0; offset < 256; offset += 17) {
          EXPECT_FALSE(model.responds(
              as_info.prefixes[i].address_at(static_cast<std::uint64_t>(offset)),
              net::SimTime(3600)));
        }
        return;
      }
    }
  }
}

}  // namespace
}  // namespace reuse::census
