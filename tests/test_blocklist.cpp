#include <gtest/gtest.h>

#include <sstream>
#include <unordered_map>

#include "blocklist/catalogue.h"
#include "blocklist/ecosystem.h"
#include "blocklist/parse.h"
#include "blocklist/store.h"
#include "blocklist/types.h"

namespace reuse::blocklist {
namespace {

net::Ipv4Address addr(const char* text) { return *net::Ipv4Address::parse(text); }

TEST(Catalogue, MatchesTable2Rows) {
  const auto& rows = table2_rows();
  EXPECT_EQ(rows.size(), 41u);  // 41 maintainers
  int total = 0;
  for (const auto& row : rows) total += row.list_count;
  // The published Table 2 rows sum to 149 (the paper's stated 151 does not
  // match its own rows; see EXPERIMENTS.md).
  EXPECT_EQ(total, 149);
  EXPECT_EQ(rows.front().maintainer, "Bad IPs");
  EXPECT_EQ(rows.front().list_count, 44);
}

TEST(Catalogue, BuildsOneInfoPerList) {
  const auto catalogue = build_catalogue(1);
  EXPECT_EQ(catalogue.size(), 149u);
  std::unordered_map<std::string, int> by_maintainer;
  for (const auto& info : catalogue) {
    ++by_maintainer[info.maintainer];
    EXPECT_GT(info.pickup_rate, 0.0);
    EXPECT_LE(info.pickup_rate, 0.9);
    EXPECT_GT(info.removal_mean_days, 0.0);
    EXPECT_FALSE(info.name.empty());
    EXPECT_EQ(info.name.find(' '), std::string::npos);
  }
  EXPECT_EQ(by_maintainer["Bad IPs"], 44);
  EXPECT_EQ(by_maintainer["Bambenek"], 22);
  EXPECT_EQ(by_maintainer["Stopforumspam"], 1);
}

TEST(Catalogue, IdsAreDenseAndUnique) {
  const auto catalogue = build_catalogue(2);
  for (std::size_t i = 0; i < catalogue.size(); ++i) {
    EXPECT_EQ(catalogue[i].id, i + 1);
  }
}

TEST(Catalogue, OperatorMarkersMatchTable2) {
  const auto catalogue = build_catalogue(3);
  int starred_maintainers = 0;
  std::unordered_map<std::string, bool> seen;
  for (const auto& info : catalogue) {
    if (!seen.contains(info.maintainer)) {
      seen[info.maintainer] = true;
      starred_maintainers += info.used_by_operators;
    }
  }
  EXPECT_EQ(starred_maintainers, 7);  // (*) rows in Table 2
}

TEST(CategoryMatching, ReputationListensToEverything) {
  for (int c = 0; c < inet::kAbuseCategoryCount; ++c) {
    EXPECT_TRUE(category_matches(ListCategory::kReputation,
                                 static_cast<inet::AbuseCategory>(c)));
  }
  EXPECT_TRUE(category_matches(ListCategory::kSpam, inet::AbuseCategory::kSpam));
  EXPECT_FALSE(
      category_matches(ListCategory::kSpam, inet::AbuseCategory::kDdos));
  EXPECT_FALSE(
      category_matches(ListCategory::kMalware, inet::AbuseCategory::kScan));
}

TEST(SnapshotStore, RecordsPresenceIntervals) {
  SnapshotStore store;
  store.record(1, addr("1.2.3.4"), 0);
  store.record(1, addr("1.2.3.4"), 1);
  store.record(1, addr("1.2.3.4"), 5);
  store.record(2, addr("1.2.3.4"), 0);
  store.record(1, addr("5.6.7.8"), 3);
  EXPECT_EQ(store.listing_count(), 3u);
  EXPECT_EQ(store.address_count(), 2u);
  const net::IntervalSet presence = store.presence(1, addr("1.2.3.4"));
  ASSERT_FALSE(presence.empty());
  EXPECT_EQ(presence.interval_count(), 2u);  // [0,2) and [5,6)
  EXPECT_EQ(presence.measure(), 3);
  EXPECT_TRUE(store.presence(3, addr("1.2.3.4")).empty());
  EXPECT_FALSE(store.has_listing(3, addr("1.2.3.4")));
  EXPECT_TRUE(store.has_listing(1, addr("1.2.3.4")));
  EXPECT_EQ(store.address_count_of(1), 2u);
  EXPECT_EQ(store.address_count_of(2), 1u);
  EXPECT_EQ(store.active_lists().size(), 2u);
}

TEST(SnapshotStore, RecordSpanMatchesPerDayRecording) {
  // The cache loader restores listings through record_span; it must build
  // exactly the store that per-day record() calls would.
  const std::pair<std::int64_t, std::int64_t> spans[] = {
      {0, 14}, {20, 21}, {25, 60}};
  SnapshotStore per_day;
  SnapshotStore bulk;
  for (const auto& [begin, end] : spans) {
    for (std::int64_t day = begin; day < end; ++day) {
      per_day.record(1, addr("1.2.3.4"), day);
    }
    bulk.record_span(1, addr("1.2.3.4"), begin, end);
  }
  bulk.record_span(2, addr("9.9.9.9"), 5, 5);  // empty span: no-op
  EXPECT_EQ(bulk.listing_count(), per_day.listing_count());
  EXPECT_EQ(bulk.sorted_addresses(), per_day.sorted_addresses());
  EXPECT_EQ(bulk.address_count_of(2), 0u);
  const net::IntervalSet expected = per_day.presence(1, addr("1.2.3.4"));
  const net::IntervalSet actual = bulk.presence(1, addr("1.2.3.4"));
  ASSERT_FALSE(expected.empty());
  ASSERT_FALSE(actual.empty());
  EXPECT_EQ(actual.intervals(), expected.intervals());
}

TEST(SnapshotStore, Slash24Aggregation) {
  SnapshotStore store;
  store.record(1, addr("1.2.3.4"), 0);
  store.record(1, addr("1.2.3.200"), 0);
  store.record(1, addr("9.9.9.9"), 0);
  const net::PrefixSet prefixes = store.blocklisted_slash24s();
  EXPECT_EQ(prefixes.size(), 2u);
  EXPECT_TRUE(prefixes.contains_address(addr("1.2.3.77")));
  EXPECT_FALSE(prefixes.contains_address(addr("1.2.4.1")));
}

class EcosystemTest : public ::testing::Test {
 protected:
  static std::vector<BlocklistInfo> two_lists() {
    BlocklistInfo spam;
    spam.id = 1;
    spam.name = "spamlist";
    spam.category = ListCategory::kSpam;
    spam.pickup_rate = 1.0;  // sees everything
    spam.removal_mean_days = 2.0;
    BlocklistInfo malware = spam;
    malware.id = 2;
    malware.name = "malwarelist";
    malware.category = ListCategory::kMalware;
    return {spam, malware};
  }

  static inet::AbuseEvent event(std::int64_t t, const char* source,
                                inet::AbuseCategory category) {
    inet::AbuseEvent e;
    e.time_seconds = t;
    e.source = addr(source);
    e.category = category;
    return e;
  }

  static EcosystemConfig config() {
    EcosystemConfig config;
    config.seed = 3;
    config.periods = {{net::SimTime(0), net::SimTime(10 * 86400)}};
    return config;
  }
};

TEST_F(EcosystemTest, ListsIngestOnlyMatchingCategories) {
  // Events land just before the day-1 snapshot so even a short retention
  // draw is still live when the snapshot runs.
  const std::vector<inet::AbuseEvent> events = {
      event(86300, "1.1.1.1", inet::AbuseCategory::kSpam),
      event(86350, "2.2.2.2", inet::AbuseCategory::kMalware),
  };
  const EcosystemResult result = simulate_ecosystem(two_lists(), events, config());
  EXPECT_TRUE(result.store.has_listing(1, addr("1.1.1.1")));
  EXPECT_FALSE(result.store.has_listing(1, addr("2.2.2.2")));
  EXPECT_TRUE(result.store.has_listing(2, addr("2.2.2.2")));
  EXPECT_FALSE(result.store.has_listing(2, addr("1.1.1.1")));
  EXPECT_EQ(result.stats.events_seen, 2u);
  EXPECT_EQ(result.stats.events_picked_up, 2u);
}

TEST_F(EcosystemTest, EntriesExpireWithoutReobservation) {
  const std::vector<inet::AbuseEvent> events = {
      event(86300, "1.1.1.1", inet::AbuseCategory::kSpam),
  };
  const EcosystemResult result = simulate_ecosystem(two_lists(), events, config());
  const net::IntervalSet presence = result.store.presence(1, addr("1.1.1.1"));
  ASSERT_FALSE(presence.empty());
  // With a 2-day mean retention the entry cannot cover all ten days (the
  // exponential would need a ~5x outlier; seeds are fixed so this is stable).
  EXPECT_LT(presence.measure(), 10);
  EXPECT_GE(presence.measure(), 1);
}

TEST_F(EcosystemTest, SnapshotsOnlyInsidePeriods) {
  EcosystemConfig gap_config;
  gap_config.seed = 4;
  gap_config.periods = {{net::SimTime(0), net::SimTime(2 * 86400)},
                        {net::SimTime(8 * 86400), net::SimTime(10 * 86400)}};
  std::vector<inet::AbuseEvent> events;
  // Steady abuse every 6 hours for 10 days keeps the address listed.
  for (int i = 0; i < 40; ++i) {
    events.push_back(event(i * 21600, "1.1.1.1", inet::AbuseCategory::kSpam));
  }
  const EcosystemResult result =
      simulate_ecosystem(two_lists(), events, gap_config);
  const net::IntervalSet presence = result.store.presence(1, addr("1.1.1.1"));
  ASSERT_FALSE(presence.empty());
  EXPECT_FALSE(presence.contains(5));  // the gap is never snapshotted
  EXPECT_EQ(result.stats.snapshots_taken, 4u);
}

TEST_F(EcosystemTest, ZeroPickupSeesNothing) {
  auto lists = two_lists();
  lists[0].pickup_rate = 0.0;
  lists[1].pickup_rate = 0.0;
  std::vector<inet::AbuseEvent> events;
  for (int i = 0; i < 100; ++i) {
    events.push_back(event(i * 3600, "1.1.1.1", inet::AbuseCategory::kSpam));
  }
  const EcosystemResult result = simulate_ecosystem(lists, events, config());
  EXPECT_EQ(result.store.listing_count(), 0u);
}

TEST_F(EcosystemTest, DeterministicAcrossRuns) {
  std::vector<inet::AbuseEvent> events;
  for (int i = 0; i < 500; ++i) {
    events.push_back(event(i * 1000, i % 2 ? "1.1.1.1" : "2.2.2.2",
                           i % 2 ? inet::AbuseCategory::kSpam
                                 : inet::AbuseCategory::kMalware));
  }
  auto lists = two_lists();
  lists[0].pickup_rate = 0.3;
  lists[1].pickup_rate = 0.3;
  const EcosystemResult a = simulate_ecosystem(lists, events, config());
  const EcosystemResult b = simulate_ecosystem(lists, events, config());
  EXPECT_EQ(a.store.listing_count(), b.store.listing_count());
  EXPECT_EQ(a.stats.events_picked_up, b.stats.events_picked_up);
}

TEST(ParseList, HandlesCommentsAndCidrs) {
  const ParsedList parsed = parse_list_text(
      "# header comment\n"
      "1.2.3.4\n"
      "5.6.7.0/24  ; trailing comment\n"
      "   8.9.10.11   \n"
      "\n"
      "not an address\n"
      "999.1.1.1\n");
  ASSERT_EQ(parsed.addresses.size(), 2u);
  EXPECT_EQ(parsed.addresses[0], addr("1.2.3.4"));
  EXPECT_EQ(parsed.addresses[1], addr("8.9.10.11"));
  ASSERT_EQ(parsed.prefixes.size(), 1u);
  EXPECT_EQ(parsed.prefixes[0].length(), 24);
  EXPECT_EQ(parsed.skipped_lines, 2u);
}

TEST(ParseList, WriteThenParseRoundTrips) {
  std::ostringstream os;
  write_list(os, "test list", {addr("1.2.3.4"), addr("5.6.7.8")});
  const ParsedList parsed = parse_list_text(os.str());
  ASSERT_EQ(parsed.addresses.size(), 2u);
  EXPECT_EQ(parsed.skipped_lines, 0u);
}

TEST(ParseList, EmptyInput) {
  const ParsedList parsed = parse_list_text("");
  EXPECT_TRUE(parsed.addresses.empty());
  EXPECT_TRUE(parsed.prefixes.empty());
}

}  // namespace
}  // namespace reuse::blocklist
