#include "sweep/sweep.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "analysis/presets.h"
#include "analysis/scenario.h"

namespace reuse::sweep {
namespace {

namespace fs = std::filesystem;

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SweepAxis must_parse(const std::string& text) {
  std::string error;
  const auto axis = parse_axis(text, &error);
  EXPECT_TRUE(axis.has_value()) << error;
  return *axis;
}

TEST(ParseAxis, AcceptsTheTableAndSpellsValuesBack) {
  const SweepAxis days = must_parse("days=4,6");
  EXPECT_EQ(days.name, "days");
  EXPECT_EQ(days.raw_values, (std::vector<std::string>{"4", "6"}));
  EXPECT_EQ(days.numbers, (std::vector<double>{4.0, 6.0}));
  const SweepAxis share = must_parse("cgn_share=0.2,0.5,0.8");
  EXPECT_EQ(share.numbers.size(), 3u);
}

TEST(ParseAxis, RejectsUnknownNamesValuesAndDomains) {
  std::string error;
  EXPECT_FALSE(parse_axis("nosuch=1", &error).has_value());
  EXPECT_NE(error.find("unknown axis"), std::string::npos);
  EXPECT_NE(error.find(axis_names()), std::string::npos)
      << "the error must list the valid axes";
  EXPECT_FALSE(parse_axis("days", &error).has_value());
  EXPECT_FALSE(parse_axis("=4", &error).has_value());
  EXPECT_FALSE(parse_axis("days=", &error).has_value());
  EXPECT_FALSE(parse_axis("days=x", &error).has_value());
  EXPECT_FALSE(parse_axis("days=4.5", &error).has_value())
      << "days is integral";
  EXPECT_FALSE(parse_axis("days=0", &error).has_value());
  EXPECT_FALSE(parse_axis("days=4,4", &error).has_value())
      << "duplicate values would make ambiguous cells";
  EXPECT_FALSE(parse_axis("cgn_share=1.5", &error).has_value());
  EXPECT_FALSE(parse_axis("evasion=0.5", &error).has_value());
}

SweepConfig tiny_sweep(const std::string& cache_dir) {
  SweepConfig config;
  config.base.seed = 7;
  config.base.world = inet::test_world_config(7);
  config.base.world.as_count = 40;
  config.base.crawl_days = 1;
  config.base.fleet.probe_count = 300;
  config.base.run_census = false;
  config.presets = {analysis::parse_preset("baseline"),
                    analysis::parse_preset("adversarial_evasion")};
  config.axes = {must_parse("days=4,6")};
  config.cache_dir = cache_dir;
  return config;
}

TEST(ExpandCells, DeterministicOrderChainsAndHorizon) {
  SweepConfig config = tiny_sweep("unused");
  config.axes.push_back(must_parse("cgn_share=0.2,0.5"));
  const std::vector<SweepCell> cells = expand_cells(config);
  ASSERT_EQ(cells.size(), 8u);  // 2 presets x 2 days x 2 shares
  // Preset-major, axes row-major with the last axis fastest.
  EXPECT_EQ(cells[0].id, "baseline/days=4,cgn_share=0.2");
  EXPECT_EQ(cells[1].id, "baseline/days=4,cgn_share=0.5");
  EXPECT_EQ(cells[2].id, "baseline/days=6,cgn_share=0.2");
  EXPECT_EQ(cells[3].id, "baseline/days=6,cgn_share=0.5");
  EXPECT_EQ(cells[4].id, "adversarial_evasion/days=4,cgn_share=0.2");
  // Cells differing only in days share a chain; the chain's horizon (its
  // max days) is declared on EVERY member so resumes are byte-identical.
  EXPECT_EQ(cells[0].chain_key, cells[2].chain_key);
  EXPECT_NE(cells[0].chain_key, cells[1].chain_key);
  EXPECT_NE(cells[0].chain_key, cells[4].chain_key);
  for (const SweepCell& cell : cells) {
    EXPECT_EQ(cell.config.horizon_days, 6) << cell.id;
    EXPECT_EQ(cell.config.jobs, 1) << cell.id;
  }
  EXPECT_EQ(cells[0].days, 4);
  EXPECT_EQ(cells[2].days, 6);
  EXPECT_EQ(cells[2].config.ecosystem.periods.size(), 1u);
  EXPECT_EQ(cells[2].config.ecosystem.periods[0].end.seconds(), 6 * 86400);
  // The preset and the share axis both land on the config: distinct cells
  // have distinct fingerprints.
  EXPECT_NE(analysis::config_fingerprint(cells[0].config),
            analysis::config_fingerprint(cells[1].config));
  EXPECT_NE(analysis::config_fingerprint(cells[0].config),
            analysis::config_fingerprint(cells[4].config));
}

TEST(ExpandCells, NoAxesYieldsOneCellPerPreset) {
  SweepConfig config = tiny_sweep("unused");
  config.axes.clear();
  const std::vector<SweepCell> cells = expand_cells(config);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].id, "baseline");
  EXPECT_EQ(cells[1].id, "adversarial_evasion");
  EXPECT_EQ(cells[0].days, 0);
  EXPECT_EQ(cells[0].config.horizon_days, 0)
      << "without a days axis the base horizon is untouched";
}

// One integration fixture runs the expensive sweeps once and every
// assertion reads the shared reports.
class SweepIntegration : public ::testing::Test {
 protected:
  static const SweepReport& cold() {
    static const SweepReport kReport = [] {
      return run_sweep(tiny_sweep(fresh_dir("sweep_cold")));
    }();
    return kReport;
  }
};

TEST_F(SweepIntegration, ColdSweepRunsEveryCellAndResumesChains) {
  ASSERT_EQ(cold().cells.size(), 4u);
  EXPECT_EQ(cold().cells_failed, 0u);
  // Per chain (preset): days=4 fresh, days=6 resumed from it.
  EXPECT_EQ(cold().fresh, 2u);
  EXPECT_EQ(cold().resumed, 2u);
  EXPECT_EQ(cold().cache_hits, 0u);
  for (const CellResult& cell : cold().cells) {
    EXPECT_FALSE(cell.failed) << cell.id << ": " << cell.error;
    EXPECT_GT(cell.blocklisted_addresses, 0u) << cell.id;
    EXPECT_NE(cell.config_fingerprint, 0u) << cell.id;
  }
  EXPECT_GT(cold().cache_dir_bytes, 0);
}

TEST_F(SweepIntegration, JobsTwoIsByteIdentical) {
  SweepConfig parallel_config = tiny_sweep(fresh_dir("sweep_jobs2"));
  parallel_config.jobs = 2;
  const SweepReport parallel_report = run_sweep(parallel_config);
  EXPECT_EQ(parallel_report.report_fingerprint, cold().report_fingerprint);
  EXPECT_EQ(render_report_markdown(parallel_report),
            render_report_markdown(cold()));
}

TEST_F(SweepIntegration, WarmRerunHitsEveryCellWithSameReport) {
  const std::string dir = fresh_dir("sweep_warm");
  SweepConfig config = tiny_sweep(dir);
  const SweepReport first = run_sweep(config);
  ASSERT_EQ(first.cells_failed, 0u);
  const SweepReport second = run_sweep(config);
  EXPECT_EQ(second.cache_hits, second.cells.size());
  EXPECT_EQ(second.fresh, 0u);
  EXPECT_EQ(second.resumed, 0u);
  EXPECT_EQ(second.report_fingerprint, first.report_fingerprint);
}

TEST_F(SweepIntegration, InjectedFailureIsIsolated) {
  SweepConfig config = tiny_sweep(fresh_dir("sweep_fail"));
  config.inject_fail_cell = 0;  // the baseline chain's head
  const SweepReport report = run_sweep(config);
  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.cells_failed, 1u);
  EXPECT_TRUE(report.cells[0].failed);
  EXPECT_NE(report.cells[0].error.find("injected"), std::string::npos);
  // The rest of the sweep — including the failed chain's LATER cell, which
  // falls back to a fresh run — still completes with real products.
  for (std::size_t i = 1; i < report.cells.size(); ++i) {
    EXPECT_FALSE(report.cells[i].failed)
        << report.cells[i].id << ": " << report.cells[i].error;
    EXPECT_GT(report.cells[i].blocklisted_addresses, 0u);
  }
  // Surviving cells' metrics match the healthy sweep's (same configs).
  for (std::size_t i = 1; i < report.cells.size(); ++i) {
    EXPECT_EQ(report.cells[i].reused_addresses,
              cold().cells[i].reused_addresses)
        << report.cells[i].id;
  }
}

TEST_F(SweepIntegration, MarkdownAndJsonCarryTheCells) {
  const std::string markdown = render_report_markdown(cold());
  EXPECT_NE(markdown.find("baseline/days=4"), std::string::npos);
  EXPECT_NE(markdown.find("adversarial_evasion/days=6"), std::string::npos);
  EXPECT_NE(markdown.find("| cell |"), std::string::npos);
  const std::string json = render_report_json(cold());
  EXPECT_NE(json.find("\"report_fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"cells_failed\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"path\": \"resumed\""), std::string::npos);
}

TEST_F(SweepIntegration, AdversarialEvasionChangesTheHeadlines) {
  // The whole point of the preset axis: the adversarial cells must not
  // silently produce the baseline's numbers.
  const CellResult& base_cell = cold().cells[1];     // baseline/days=6
  const CellResult& evading_cell = cold().cells[3];  // adversarial/days=6
  EXPECT_EQ(base_cell.preset, "baseline");
  EXPECT_EQ(evading_cell.preset, "adversarial_evasion");
  EXPECT_NE(base_cell.blocklisted_addresses,
            evading_cell.blocklisted_addresses);
}

}  // namespace
}  // namespace reuse::sweep
