#include "atlas/connection_log.h"

#include <gtest/gtest.h>

#include <sstream>

namespace reuse::atlas {
namespace {

TEST(ConnectionLog, CsvRoundTrip) {
  std::vector<ConnectionRecord> records{
      {0, 1, *net::Ipv4Address::parse("10.0.0.1"), 100},
      {86400, 2, *net::Ipv4Address::parse("192.0.2.7"), 4134},
      {172800, 1, *net::Ipv4Address::parse("10.0.0.2"), 100},
  };
  std::ostringstream os;
  write_csv(os, records);
  std::istringstream is(os.str());
  const auto parsed = read_csv(is);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, records);
}

TEST(ConnectionLog, ParsesSingleRecord) {
  const auto record = parse_record("3600,42,1.2.3.4,65000");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->time_seconds, 3600);
  EXPECT_EQ(record->probe_id, 42u);
  EXPECT_EQ(record->address.to_string(), "1.2.3.4");
  EXPECT_EQ(record->asn, 65000u);
}

TEST(ConnectionLog, RejectsMalformedRecords) {
  EXPECT_FALSE(parse_record(""));
  EXPECT_FALSE(parse_record("1,2,3"));
  EXPECT_FALSE(parse_record("1,2,1.2.3.4"));
  EXPECT_FALSE(parse_record("x,2,1.2.3.4,5"));
  EXPECT_FALSE(parse_record("1,2,999.2.3.4,5"));
  EXPECT_FALSE(parse_record("1,2,1.2.3.4,5,6"));
  EXPECT_FALSE(parse_record("1,2,1.2.3.4,asn"));
}

TEST(ConnectionLog, NegativeTimesSupported) {
  // Warm-up records predate the simulation epoch.
  const auto record = parse_record("-3600,1,1.2.3.4,5");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->time_seconds, -3600);
}

TEST(ConnectionLog, ReadSkipsHeaderAndBlankLines) {
  std::istringstream is("time,probe_id,address,asn\n\n1,2,1.2.3.4,5\n\n");
  const auto parsed = read_csv(is);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 1u);
}

TEST(ConnectionLog, ReadRejectsCorruptBody) {
  std::istringstream is("time,probe_id,address,asn\nnot-a-record\n");
  EXPECT_FALSE(read_csv(is).has_value());
}

}  // namespace
}  // namespace reuse::atlas
