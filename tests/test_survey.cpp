// The survey tabulators must reproduce the paper's Table 1 marginals
// EXACTLY from the embedded dataset — these are the strictest paper-vs-code
// assertions in the suite.
#include "survey/survey.h"

#include <gtest/gtest.h>

#include <cmath>

namespace reuse::survey {
namespace {

class SurveyTest : public ::testing::Test {
 protected:
  static SurveySummary summary() { return summarize(embedded_survey()); }
};

TEST_F(SurveyTest, SixtyFiveRespondents) {
  EXPECT_EQ(embedded_survey().size(), 65u);
  EXPECT_EQ(summary().respondents, 65u);
}

TEST_F(SurveyTest, ExternalBlocklistUsageIs85Percent) {
  EXPECT_NEAR(summary().external_usage_fraction, 0.85, 0.005);
}

TEST_F(SurveyTest, InternalBlocklistUsageIs70Percent) {
  EXPECT_NEAR(summary().internal_usage_fraction, 0.70, 0.01);
}

TEST_F(SurveyTest, DirectBlockingIs59Percent) {
  EXPECT_NEAR(summary().direct_block_fraction, 0.59, 0.006);
}

TEST_F(SurveyTest, ThreatIntelIsUnder35Percent) {
  EXPECT_LT(summary().threat_intel_fraction, 0.35);
  EXPECT_GT(summary().threat_intel_fraction, 0.30);
}

TEST_F(SurveyTest, PaidListsAverageTwoMaxThirtyNine) {
  EXPECT_DOUBLE_EQ(summary().paid_lists_mean, 2.0);
  EXPECT_EQ(summary().paid_lists_max, 39);
}

TEST_F(SurveyTest, PublicListsAverageTenMaxSixtyEight) {
  EXPECT_DOUBLE_EQ(summary().public_lists_mean, 10.0);
  EXPECT_EQ(summary().public_lists_max, 68);
}

TEST_F(SurveyTest, ThirtyFourAnsweredReuseQuestions) {
  EXPECT_EQ(summary().reuse_question_respondents, 34u);
}

TEST_F(SurveyTest, CgnConcernIs56Percent) {
  // 19 of 34.
  EXPECT_NEAR(summary().cgn_concern_fraction, 19.0 / 34.0, 1e-9);
}

TEST_F(SurveyTest, DynamicConcernIs76Percent) {
  // 26 of 34.
  EXPECT_NEAR(summary().dynamic_concern_fraction, 26.0 / 34.0, 1e-9);
}

TEST_F(SurveyTest, MultiTypeUsageIs55Percent) {
  EXPECT_NEAR(summary().multi_type_fraction, 36.0 / 65.0, 1e-9);
}

TEST_F(SurveyTest, NonExternalUsersHaveNoPublicLists) {
  for (const SurveyResponse& r : embedded_survey()) {
    if (!r.uses_external) {
      EXPECT_EQ(r.public_lists, 0);
      EXPECT_EQ(r.list_types_used, 0);
    }
  }
}

TEST_F(SurveyTest, Figure9IsSortedAscendingWithSpamOnTop) {
  const auto usage = reuse_issue_type_usage(embedded_survey());
  ASSERT_EQ(usage.size(), static_cast<std::size_t>(kOperatorListTypeCount));
  for (std::size_t i = 1; i < usage.size(); ++i) {
    EXPECT_LE(usage[i - 1].second, usage[i].second);
  }
  EXPECT_EQ(usage.back().first, "Spam");
  EXPECT_EQ(usage.front().first, "VOIP");
  // Spam usage among reuse-issue operators is very high, VOIP low.
  EXPECT_GT(usage.back().second, 0.85);
  EXPECT_LT(usage.front().second, 0.30);
}

TEST_F(SurveyTest, ReuseIssueGroupSize) {
  std::size_t issues = 0;
  for (const SurveyResponse& r : embedded_survey()) {
    issues += r.faced_reuse_issue();
  }
  EXPECT_EQ(issues, 26u);  // the dynamic-concern group subsumes the CGN group
}

TEST(SurveyHelpers, TypeCountCountsBits) {
  SurveyResponse r;
  EXPECT_EQ(r.type_count(), 0);
  r.list_types_used = 0b101;
  EXPECT_EQ(r.type_count(), 2);
  EXPECT_TRUE(r.uses_type(static_cast<OperatorListType>(0)));
  EXPECT_FALSE(r.uses_type(static_cast<OperatorListType>(1)));
}

TEST(SurveyHelpers, UnansweredReuseQuestionsDoNotCountAsIssues) {
  SurveyResponse r;
  EXPECT_FALSE(r.faced_reuse_issue());
  r.cgn_hurts_accuracy = false;
  r.dynamic_hurts_accuracy = false;
  EXPECT_FALSE(r.faced_reuse_issue());
  r.dynamic_hurts_accuracy = true;
  EXPECT_TRUE(r.faced_reuse_issue());
}

TEST(SurveyHelpers, SummarizeEmptyIsSafe) {
  const SurveySummary summary = summarize({});
  EXPECT_EQ(summary.respondents, 0u);
  EXPECT_EQ(summary.paid_lists_max, 0);
}

TEST(SurveyHelpers, ToStringCoversAllTypes) {
  for (int t = 0; t < kOperatorListTypeCount; ++t) {
    EXPECT_NE(to_string(static_cast<OperatorListType>(t)), "?");
  }
}

}  // namespace
}  // namespace reuse::survey
