// The sharded crawl's determinism contract (crawler/sharded.h): the shard
// count is configuration, every pool size runs the same K shard
// simulations, and the index-ordered harvest makes the merged products
// byte-identical whether the shards ran serially or on 2 or 8 workers —
// with and without fault injection, where the summed per-shard ledgers
// must still reconcile exactly against the consumer-side counters.
#include <gtest/gtest.h>

#include <cstddef>
#include <optional>

#include "crawler/sharded.h"
#include "internet/world.h"
#include "netbase/thread_pool.h"
#include "simnet/faults.h"

namespace reuse::crawler {
namespace {

inet::WorldConfig tiny_world_config() {
  inet::WorldConfig config = inet::test_world_config(11);
  config.as_count = 40;
  return config;
}

ShardedCrawlConfig tiny_crawl_config(bool chaos) {
  ShardedCrawlConfig config;
  config.base.seed = 11 ^ 0xc4a3ULL;
  config.dht.seed = 11 ^ 0xd47ULL;
  config.window = net::TimeWindow{net::SimTime(0), net::SimTime(86400)};
  config.shard_count = 4;
  if (chaos) {
    config.faults.seed = 77;
    // A bootstrap outage over the crawl start (the watchdog must carry
    // discovery through it) and a loss burst mid-crawl.
    config.faults.episodes.push_back(sim::FaultEpisode{
        sim::FaultKind::kBootstrapOutage,
        net::TimeWindow{net::SimTime(0), net::SimTime(1200)}, 1.0, 1});
    config.faults.episodes.push_back(sim::FaultEpisode{
        sim::FaultKind::kBurstLoss,
        net::TimeWindow{net::SimTime(20000), net::SimTime(30000)}, 0.5, 2});
  }
  return config;
}

ShardedCrawlResult run_with_jobs(const inet::World& world, bool chaos,
                                 std::size_t jobs) {
  std::optional<net::ThreadPool> pool;
  if (jobs > 1) pool.emplace(jobs);
  return run_sharded_crawl(world, tiny_crawl_config(chaos),
                           pool.has_value() ? &*pool : nullptr);
}

void expect_identical(const ShardedCrawlResult& a, const ShardedCrawlResult& b,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.stats.get_nodes_sent, b.stats.get_nodes_sent);
  EXPECT_EQ(a.stats.get_nodes_responses, b.stats.get_nodes_responses);
  EXPECT_EQ(a.stats.pings_sent, b.stats.pings_sent);
  EXPECT_EQ(a.stats.ping_responses, b.stats.ping_responses);
  EXPECT_EQ(a.stats.endpoints_discovered, b.stats.endpoints_discovered);
  EXPECT_EQ(a.stats.endpoints_skipped_restricted,
            b.stats.endpoints_skipped_restricted);
  EXPECT_EQ(a.stats.verification_rounds, b.stats.verification_rounds);
  EXPECT_EQ(a.stats.bootstrap_retries, b.stats.bootstrap_retries);
  EXPECT_EQ(a.stats.bootstrap_recoveries, b.stats.bootstrap_recoveries);
  EXPECT_EQ(a.stats.verification_retries, b.stats.verification_retries);
  EXPECT_EQ(a.stats.verification_recoveries, b.stats.verification_recoveries);
  EXPECT_EQ(a.distinct_node_ids, b.distinct_node_ids);
  EXPECT_EQ(a.dht_peers, b.dht_peers);
  EXPECT_EQ(a.dht_addresses, b.dht_addresses);
  EXPECT_EQ(a.nated, b.nated);
  EXPECT_EQ(a.transport_fault_request_drops, b.transport_fault_request_drops);
  EXPECT_EQ(a.transport_fault_response_drops,
            b.transport_fault_response_drops);
  EXPECT_EQ(a.fault_stats, b.fault_stats);
  ASSERT_EQ(a.evidence.size(), b.evidence.size());
  for (const auto& [address, evidence] : a.evidence) {
    const auto it = b.evidence.find(address);
    ASSERT_NE(it, b.evidence.end()) << address.to_string();
    EXPECT_EQ(evidence.ports, it->second.ports) << address.to_string();
    EXPECT_EQ(evidence.max_concurrent_users, it->second.max_concurrent_users)
        << address.to_string();
    EXPECT_EQ(evidence.verification_rounds, it->second.verification_rounds)
        << address.to_string();
    EXPECT_EQ(evidence.first_seen.seconds(), it->second.first_seen.seconds())
        << address.to_string();
    EXPECT_EQ(evidence.last_seen.seconds(), it->second.last_seen.seconds())
        << address.to_string();
  }
}

TEST(ShardedCrawl, ByteIdenticalAcrossJobCounts) {
  const inet::World world(tiny_world_config());
  const ShardedCrawlResult serial = run_with_jobs(world, /*chaos=*/false, 1);
  // A healthy crawl discovers something; an empty result would make the
  // equality checks below vacuous.
  ASSERT_GT(serial.evidence.size(), 0u);
  ASSERT_GT(serial.stats.pings_sent, 0u);
  EXPECT_EQ(serial.fault_stats.total(), 0u);
  const ShardedCrawlResult two = run_with_jobs(world, /*chaos=*/false, 2);
  const ShardedCrawlResult eight = run_with_jobs(world, /*chaos=*/false, 8);
  expect_identical(serial, two, "jobs 1 vs 2");
  expect_identical(serial, eight, "jobs 1 vs 8");
}

TEST(ShardedCrawl, ChaosByteIdenticalAcrossJobCountsAndLedgerReconciles) {
  const inet::World world(tiny_world_config());
  const ShardedCrawlResult serial = run_with_jobs(world, /*chaos=*/true, 1);
  // The plan must actually have injected, or this test is the fault-free
  // one in disguise.
  ASSERT_GT(serial.fault_stats.total(), 0u);
  const ShardedCrawlResult two = run_with_jobs(world, /*chaos=*/true, 2);
  const ShardedCrawlResult eight = run_with_jobs(world, /*chaos=*/true, 8);
  expect_identical(serial, two, "jobs 1 vs 2");
  expect_identical(serial, eight, "jobs 1 vs 8");

  // Exact ledger reconciliation across the summed per-shard injectors: every
  // datagram the transports counted as fault-lost is accounted for by kind
  // (see analysis/degradation.h).
  for (const ShardedCrawlResult* result : {&serial, &two, &eight}) {
    EXPECT_EQ(result->transport_fault_request_drops,
              result->fault_stats.burst_request_drops +
                  result->fault_stats.bootstrap_blackholes);
    EXPECT_EQ(result->transport_fault_response_drops,
              result->fault_stats.burst_response_drops);
  }
}

TEST(ShardedCrawl, FaultFreeResultMatchesEmptyPlanResult) {
  // An empty plan must be byte-identical to no plan at all — the shards
  // skip injector construction entirely, and attaching one with no
  // episodes draws nothing.
  const inet::World world(tiny_world_config());
  ShardedCrawlConfig with_empty_plan = tiny_crawl_config(/*chaos=*/false);
  with_empty_plan.faults.seed = 999;  // an empty plan's seed is irrelevant
  const ShardedCrawlResult a =
      run_sharded_crawl(world, tiny_crawl_config(false), nullptr);
  const ShardedCrawlResult b =
      run_sharded_crawl(world, with_empty_plan, nullptr);
  expect_identical(a, b, "no plan vs empty plan");
}

TEST(ShardedCrawl, ShardCountChangesProductsButNotTheirShape) {
  // The shard count is *configuration* (fingerprinted): a different K is a
  // different measurement, not a scheduling choice. Sanity-check that both
  // still produce a populated, internally consistent harvest.
  const inet::World world(tiny_world_config());
  ShardedCrawlConfig two_shards = tiny_crawl_config(/*chaos=*/false);
  two_shards.shard_count = 2;
  const ShardedCrawlResult k2 = run_sharded_crawl(world, two_shards, nullptr);
  const ShardedCrawlResult k4 =
      run_sharded_crawl(world, tiny_crawl_config(false), nullptr);
  EXPECT_GT(k2.evidence.size(), 0u);
  EXPECT_GT(k4.evidence.size(), 0u);
  for (const auto& [address, users] : k4.nated) {
    const auto it = k4.evidence.find(address);
    ASSERT_NE(it, k4.evidence.end());
    EXPECT_EQ(users, it->second.max_concurrent_users);
    EXPECT_GE(users, 2u);
  }
}

}  // namespace
}  // namespace reuse::crawler
