#include "netbase/interval_set.h"

#include <gtest/gtest.h>

#include <bitset>

#include "netbase/rng.h"

namespace reuse::net {
namespace {

TEST(IntervalSet, InsertAndContains) {
  IntervalSet set;
  set.insert(5, 10);
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(9));
  EXPECT_FALSE(set.contains(10));
  EXPECT_FALSE(set.contains(4));
  EXPECT_EQ(set.measure(), 5);
}

TEST(IntervalSet, EmptyInsertIsNoop) {
  IntervalSet set;
  set.insert(5, 5);
  set.insert(7, 3);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, TouchingIntervalsMerge) {
  IntervalSet set;
  set.insert(0, 5);
  set.insert(5, 10);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.measure(), 10);
}

TEST(IntervalSet, OverlappingIntervalsMerge) {
  IntervalSet set;
  set.insert(0, 6);
  set.insert(4, 12);
  set.insert(20, 25);
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_EQ(set.measure(), 17);
  EXPECT_EQ(set.min(), 0);
  EXPECT_EQ(set.max(), 25);
}

TEST(IntervalSet, InsertBridgesGaps) {
  IntervalSet set;
  set.insert(0, 2);
  set.insert(8, 10);
  set.insert(1, 9);
  EXPECT_EQ(set.interval_count(), 1u);
  EXPECT_EQ(set.measure(), 10);
}

TEST(IntervalSet, EraseSplitsIntervals) {
  IntervalSet set;
  set.insert(0, 10);
  set.erase(3, 7);
  EXPECT_EQ(set.interval_count(), 2u);
  EXPECT_TRUE(set.contains(2));
  EXPECT_FALSE(set.contains(3));
  EXPECT_FALSE(set.contains(6));
  EXPECT_TRUE(set.contains(7));
  EXPECT_EQ(set.measure(), 6);
}

TEST(IntervalSet, EraseBeyondEdgesClips) {
  IntervalSet set;
  set.insert(5, 10);
  set.erase(0, 7);
  EXPECT_EQ(set.measure(), 3);
  set.erase(-100, 100);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, OverlapMeasuresIntersection) {
  IntervalSet set;
  set.insert(0, 10);
  set.insert(20, 30);
  EXPECT_EQ(set.overlap(5, 25), 10);  // 5..10 and 20..25
  EXPECT_EQ(set.overlap(10, 20), 0);
  EXPECT_EQ(set.overlap(-5, 100), 20);
}

// Property sweep: random insert/erase sequences agree with a dense bitmap
// model over a small universe.
class IntervalSetProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalSetProperty, AgreesWithBitmapModel) {
  constexpr int kUniverse = 128;
  Rng rng(GetParam());
  IntervalSet set;
  std::bitset<kUniverse> model;
  for (int step = 0; step < 300; ++step) {
    const auto a = static_cast<std::int64_t>(rng.uniform(kUniverse));
    const auto b = static_cast<std::int64_t>(rng.uniform(kUniverse));
    const std::int64_t lo = std::min(a, b);
    const std::int64_t hi = std::max(a, b);
    if (rng.bernoulli(0.6)) {
      set.insert(lo, hi);
      for (std::int64_t i = lo; i < hi; ++i) model.set(static_cast<std::size_t>(i));
    } else {
      set.erase(lo, hi);
      for (std::int64_t i = lo; i < hi; ++i) model.reset(static_cast<std::size_t>(i));
    }
    ASSERT_EQ(set.measure(), static_cast<std::int64_t>(model.count()));
    // Spot-check membership at a few random points.
    for (int check = 0; check < 8; ++check) {
      const auto p = static_cast<std::int64_t>(rng.uniform(kUniverse));
      ASSERT_EQ(set.contains(p), model.test(static_cast<std::size_t>(p)))
          << "point " << p << " after step " << step;
    }
    // Invariant: intervals sorted, disjoint, non-touching.
    const auto& intervals = set.intervals();
    for (std::size_t i = 0; i < intervals.size(); ++i) {
      ASSERT_LT(intervals[i].begin, intervals[i].end);
      if (i > 0) {
        ASSERT_LT(intervals[i - 1].end, intervals[i].begin);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalSetProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace reuse::net
