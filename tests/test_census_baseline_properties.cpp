// Property sweep over census configurations: the baseline's documented
// strengths and weaknesses must hold across sampling rates and seeds.
#include <gtest/gtest.h>

#include "census/census.h"

namespace reuse::census {
namespace {

class CensusProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CensusProperty, NeverFlagsNonPoolMiddleboxSpace) {
  const inet::World world(inet::test_world_config(GetParam()));
  CensusConfig config;
  config.seed = GetParam() * 31;
  config.block_sample_fraction = 0.4;
  config.window = {net::SimTime(0), net::SimTime(7 * 86400)};
  const CensusResult result = run_census(world, config);

  for (const auto& prefix : result.dynamic_blocks.to_vector()) {
    const inet::PrefixRole role = world.role_of(prefix.network());
    // CGN and home-NAT space answers through middleboxes and must look
    // static; server space is stably up. Only pool space (or, rarely,
    // oddly behaving residential space) may be called dynamic.
    EXPECT_NE(role, inet::PrefixRole::kCgnPool) << prefix.to_string();
    EXPECT_NE(role, inet::PrefixRole::kHomeNatResidential) << prefix.to_string();
    EXPECT_NE(role, inet::PrefixRole::kServerHosting) << prefix.to_string();
    EXPECT_NE(role, inet::PrefixRole::kUnused) << prefix.to_string();
  }
}

TEST_P(CensusProperty, IcmpFilteredPoolsAreInvisible) {
  const inet::World world(inet::test_world_config(GetParam()));
  CensusConfig config;
  config.seed = GetParam() * 37;
  config.block_sample_fraction = 1.0;  // survey everything
  config.window = {net::SimTime(0), net::SimTime(5 * 86400)};
  const CensusResult result = run_census(world, config);

  for (const auto& prefix : result.dynamic_blocks.to_vector()) {
    const inet::AsInfo* as_info = world.find_as(world.asn_of(prefix.network()));
    ASSERT_NE(as_info, nullptr);
    EXPECT_FALSE(as_info->filters_icmp)
        << prefix.to_string() << " should be invisible to ICMP";
  }
}

TEST_P(CensusProperty, SamplingScalesProbeVolumeLinearly) {
  const inet::World world(inet::test_world_config(GetParam()));
  auto probes_at = [&](double fraction) {
    CensusConfig config;
    config.seed = 5;
    config.block_sample_fraction = fraction;
    config.window = {net::SimTime(0), net::SimTime(86400)};
    return run_census(world, config).probes_sent;
  };
  const auto half = probes_at(0.5);
  const auto tenth = probes_at(0.1);
  EXPECT_GT(half, tenth * 4);
  EXPECT_LT(half, tenth * 6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CensusProperty, ::testing::Values(41, 43, 47));

}  // namespace
}  // namespace reuse::census
