#include "atlas/fleet.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace reuse::atlas {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static const inet::World& world() {
    static const inet::World kWorld(inet::test_world_config(13));
    return kWorld;
  }
  static FleetConfig config() {
    FleetConfig config;
    config.seed = 55;
    config.probe_count = 400;
    return config;
  }
  static const AtlasFleet& fleet() {
    static const AtlasFleet kFleet(world(), config());
    return kFleet;
  }
};

TEST_F(FleetTest, BuildsRequestedProbeCount) {
  EXPECT_EQ(fleet().probe_count(), 400u);
  EXPECT_FALSE(fleet().log().empty());
}

TEST_F(FleetTest, LogIsTimeSorted) {
  const auto& log = fleet().log();
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].time_seconds, log[i].time_seconds);
  }
}

TEST_F(FleetTest, RecordsStayInsideWindow) {
  const auto window = config().window;
  for (const ConnectionRecord& record : fleet().log()) {
    EXPECT_GE(record.time_seconds, window.begin.seconds());
    EXPECT_LT(record.time_seconds, window.end.seconds());
  }
}

TEST_F(FleetTest, RecordAsnMatchesAddressOwner) {
  for (const ConnectionRecord& record : fleet().log()) {
    EXPECT_EQ(world().asn_of(record.address), record.asn)
        << record.address.to_string();
  }
}

TEST_F(FleetTest, EveryProbeEmitsRecords) {
  std::unordered_set<ProbeId> seen;
  for (const ConnectionRecord& record : fleet().log()) {
    seen.insert(record.probe_id);
  }
  EXPECT_EQ(seen.size(), fleet().probe_count());
}

TEST_F(FleetTest, RelocatedProbesSpanTwoAses) {
  std::unordered_map<ProbeId, std::unordered_set<inet::Asn>> asns;
  for (const ConnectionRecord& record : fleet().log()) {
    asns[record.probe_id].insert(record.asn);
  }
  std::size_t relocated_in_truth = 0;
  for (const ProbeTruth& truth : fleet().truths()) {
    if (truth.relocated) {
      ++relocated_in_truth;
      EXPECT_NE(truth.second_host, 0u);
      // The move is visible in the log unless one span was empty.
      EXPECT_GE(asns[truth.probe_id].size(), 1u);
    } else {
      EXPECT_EQ(asns[truth.probe_id].size(), 1u);
    }
  }
  // ~13% of 400.
  EXPECT_GT(relocated_in_truth, 20u);
  EXPECT_LT(relocated_in_truth, 100u);
}

TEST_F(FleetTest, StaticHostsNeverChangeAddress) {
  std::unordered_map<ProbeId, std::unordered_set<net::Ipv4Address>> addresses;
  for (const ConnectionRecord& record : fleet().log()) {
    addresses[record.probe_id].insert(record.address);
  }
  for (const ProbeTruth& truth : fleet().truths()) {
    if (truth.relocated) continue;
    const inet::User& host = world().user(truth.host);
    if (host.attachment != inet::AttachmentKind::kDynamic) {
      EXPECT_EQ(addresses[truth.probe_id].size(), 1u)
          << "static probe " << truth.probe_id;
    }
  }
}

TEST_F(FleetTest, FastPoolProbesChangeOften) {
  std::unordered_map<ProbeId, std::unordered_set<net::Ipv4Address>> addresses;
  for (const ConnectionRecord& record : fleet().log()) {
    addresses[record.probe_id].insert(record.address);
  }
  std::size_t fast_probes = 0;
  for (const ProbeTruth& truth : fleet().truths()) {
    if (!truth.on_fast_pool || truth.relocated) continue;
    ++fast_probes;
    // A probe on a <= 1-day pool over 16 months sees hundreds of addresses.
    EXPECT_GT(addresses[truth.probe_id].size(), 50u);
  }
  if (fast_probes == 0) {
    GTEST_SKIP() << "seed produced no fast-pool probes";
  }
}

TEST_F(FleetTest, TruthFlagsMatchWorld) {
  for (const ProbeTruth& truth : fleet().truths()) {
    const inet::User& host = world().user(truth.host);
    EXPECT_EQ(truth.on_dynamic_pool,
              host.attachment == inet::AttachmentKind::kDynamic);
    if (truth.on_fast_pool) {
      EXPECT_TRUE(truth.on_dynamic_pool);
    }
    EXPECT_EQ(fleet().truth(truth.probe_id).probe_id, truth.probe_id);
  }
}

TEST(FleetDeterminism, SameSeedSameLog) {
  const inet::World world(inet::test_world_config(13));
  FleetConfig config;
  config.seed = 9;
  config.probe_count = 50;
  const AtlasFleet a(world, config);
  const AtlasFleet b(world, config);
  EXPECT_EQ(a.log().size(), b.log().size());
  for (std::size_t i = 0; i < a.log().size(); i += 37) {
    EXPECT_EQ(a.log()[i], b.log()[i]);
  }
}

}  // namespace
}  // namespace reuse::atlas
