#include "atlas/fleet.h"

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

namespace reuse::atlas {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  static const inet::World& world() {
    static const inet::World kWorld(inet::test_world_config(13));
    return kWorld;
  }
  static FleetConfig config() {
    FleetConfig config;
    config.seed = 55;
    config.probe_count = 400;
    return config;
  }
  static const AtlasFleet& fleet() {
    static const AtlasFleet kFleet(world(), config());
    return kFleet;
  }
  /// Expanded once: the per-record assertions below predate the compressed
  /// log and still read the flat (time, probe)-sorted view.
  static const std::vector<ConnectionRecord>& log() {
    static const std::vector<ConnectionRecord> kLog = fleet().expand_log();
    return kLog;
  }
};

TEST_F(FleetTest, BuildsRequestedProbeCount) {
  EXPECT_EQ(fleet().probe_count(), 400u);
  EXPECT_FALSE(log().empty());
}

TEST_F(FleetTest, LogIsTimeSorted) {
  const auto& records = log();
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].time_seconds, records[i].time_seconds);
  }
}

TEST_F(FleetTest, RecordsStayInsideWindow) {
  const auto window = config().window;
  for (const ConnectionRecord& record : log()) {
    EXPECT_GE(record.time_seconds, window.begin.seconds());
    EXPECT_LT(record.time_seconds, window.end.seconds());
  }
}

TEST_F(FleetTest, RecordAsnMatchesAddressOwner) {
  for (const ConnectionRecord& record : log()) {
    EXPECT_EQ(world().asn_of(record.address), record.asn)
        << record.address.to_string();
  }
}

TEST_F(FleetTest, EveryProbeEmitsRecords) {
  std::unordered_set<ProbeId> seen;
  for (const ConnectionRecord& record : log()) {
    seen.insert(record.probe_id);
  }
  EXPECT_EQ(seen.size(), fleet().probe_count());
}

TEST_F(FleetTest, RelocatedProbesSpanTwoAses) {
  std::unordered_map<ProbeId, std::unordered_set<inet::Asn>> asns;
  for (const ConnectionRecord& record : log()) {
    asns[record.probe_id].insert(record.asn);
  }
  std::size_t relocated_in_truth = 0;
  for (const ProbeTruth& truth : fleet().truths()) {
    if (truth.relocated) {
      ++relocated_in_truth;
      EXPECT_NE(truth.second_host, 0u);
      // The move is visible in the log unless one span was empty.
      EXPECT_GE(asns[truth.probe_id].size(), 1u);
    } else {
      EXPECT_EQ(asns[truth.probe_id].size(), 1u);
    }
  }
  // ~13% of 400.
  EXPECT_GT(relocated_in_truth, 20u);
  EXPECT_LT(relocated_in_truth, 100u);
}

TEST_F(FleetTest, StaticHostsNeverChangeAddress) {
  std::unordered_map<ProbeId, std::unordered_set<net::Ipv4Address>> addresses;
  for (const ConnectionRecord& record : log()) {
    addresses[record.probe_id].insert(record.address);
  }
  for (const ProbeTruth& truth : fleet().truths()) {
    if (truth.relocated) continue;
    const inet::User& host = world().user(truth.host);
    if (host.attachment != inet::AttachmentKind::kDynamic) {
      EXPECT_EQ(addresses[truth.probe_id].size(), 1u)
          << "static probe " << truth.probe_id;
    }
  }
}

TEST_F(FleetTest, FastPoolProbesChangeOften) {
  std::unordered_map<ProbeId, std::unordered_set<net::Ipv4Address>> addresses;
  for (const ConnectionRecord& record : log()) {
    addresses[record.probe_id].insert(record.address);
  }
  std::size_t fast_probes = 0;
  for (const ProbeTruth& truth : fleet().truths()) {
    if (!truth.on_fast_pool || truth.relocated) continue;
    ++fast_probes;
    // A probe on a <= 1-day pool over 16 months sees hundreds of addresses.
    EXPECT_GT(addresses[truth.probe_id].size(), 50u);
  }
  if (fast_probes == 0) {
    GTEST_SKIP() << "seed produced no fast-pool probes";
  }
}

TEST_F(FleetTest, TruthFlagsMatchWorld) {
  for (const ProbeTruth& truth : fleet().truths()) {
    const inet::User& host = world().user(truth.host);
    EXPECT_EQ(truth.on_dynamic_pool,
              host.attachment == inet::AttachmentKind::kDynamic);
    if (truth.on_fast_pool) {
      EXPECT_TRUE(truth.on_dynamic_pool);
    }
    EXPECT_EQ(fleet().truth(truth.probe_id).probe_id, truth.probe_id);
  }
}

TEST(FleetDeterminism, SameSeedSameLog) {
  const inet::World world(inet::test_world_config(13));
  FleetConfig config;
  config.seed = 9;
  config.probe_count = 50;
  const AtlasFleet a(world, config);
  const AtlasFleet b(world, config);
  const std::vector<ConnectionRecord> log_a = a.expand_log();
  const std::vector<ConnectionRecord> log_b = b.expand_log();
  EXPECT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); i += 37) {
    EXPECT_EQ(log_a[i], log_b[i]);
  }
}

TEST_F(FleetTest, CompressedRecordCountMatchesExpansion) {
  EXPECT_EQ(fleet().record_count(), log().size());
  EXPECT_GT(fleet().compressed_log().run_count(), 0u);
  // Compression must actually pay: keepalives dominate a 488-day window.
  EXPECT_LT(fleet().compressed_log().run_count(), log().size());
}

TEST_F(FleetTest, CompressedRunsAreProbeMajorAndTimeSorted) {
  const CompressedLog& compressed = fleet().compressed_log();
  ASSERT_EQ(compressed.probe_count(), fleet().probe_count());
  const std::int64_t stride = compressed.stride_seconds();
  EXPECT_EQ(stride, config().keepalive.count());
  for (std::size_t p = 0; p < compressed.probe_count(); ++p) {
    EXPECT_EQ(compressed.probe_id_at(p), static_cast<ProbeId>(p + 1));
    const auto [first, last] = compressed.runs_of(p);
    for (std::size_t r = first; r < last; ++r) {
      const LogRun run = compressed.run_at(r);
      EXPECT_LE(run.first_seconds, run.last_seconds);
      EXPECT_EQ((run.last_seconds - run.first_seconds) % stride, 0);
      if (r > first) {
        EXPECT_GT(run.first_seconds, compressed.run_at(r - 1).last_seconds);
      }
    }
  }
}

TEST_F(FleetTest, CompressedLogIsSmallerThanExpansion) {
  const std::size_t expanded_bytes = log().size() * sizeof(ConnectionRecord);
  EXPECT_LT(fleet().compressed_log().memory_bytes(), expanded_bytes / 4);
}

}  // namespace
}  // namespace reuse::atlas
