#include "netbase/address_table.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "netbase/rng.h"

namespace reuse::net {
namespace {

std::vector<std::uint32_t> values_of(std::initializer_list<std::uint32_t> vs) {
  return std::vector<std::uint32_t>(vs);
}

TEST(AddressTable, EmptyTable) {
  const AddressTable table((std::vector<std::uint32_t>()));
  EXPECT_EQ(table.size(), 0u);
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.bucket_count(), 0u);
  EXPECT_EQ(table.index_of(Ipv4Address(0)), AddressTable::kNotFound);
  EXPECT_FALSE(table.contains(Ipv4Address(0x01020304)));
}

TEST(AddressTable, DenseIndexRoundTrip) {
  // Unsorted input with addresses spread over several /24s.
  const auto input = values_of({0x0a000001, 0x0a000102, 0xc0a80001,
                                   0x0a0000ff, 0x0a000100, 0x01000000});
  const AddressTable table(input);
  ASSERT_EQ(table.size(), input.size());

  std::vector<std::uint32_t> sorted = input;
  std::sort(sorted.begin(), sorted.end());
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    // Dense indices are sorted rank order, and both directions agree.
    EXPECT_EQ(table.address_at(i), Ipv4Address(sorted[i]));
    EXPECT_EQ(table.index_of(Ipv4Address(sorted[i])), i);
    EXPECT_TRUE(table.contains(Ipv4Address(sorted[i])));
  }
}

TEST(AddressTable, MissesReturnNotFound) {
  const AddressTable table(values_of({0x0a000001, 0x0a000003}));
  // Same /24 bucket, absent address.
  EXPECT_EQ(table.index_of(Ipv4Address(0x0a000002)), AddressTable::kNotFound);
  // Bucket that does not exist at all.
  EXPECT_EQ(table.index_of(Ipv4Address(0x0b000001)), AddressTable::kNotFound);
  EXPECT_FALSE(table.contains(Ipv4Address(0x0a000000)));
}

TEST(AddressTable, DuplicateInsertsCollapse) {
  const AddressTable table(values_of(
      {0x0a000001, 0x0a000001, 0x0a000001, 0x0a000002, 0x0a000002}));
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.index_of(Ipv4Address(0x0a000001)), 0u);
  EXPECT_EQ(table.index_of(Ipv4Address(0x0a000002)), 1u);
}

TEST(AddressTable, Slash24BucketBoundaries) {
  // x.x.x.255 and the next /24's x.x.x.0 are adjacent numerically but land
  // in different buckets; both directions of the two-level lookup must
  // agree across the seam.
  const auto input = values_of({0x0a0000ff, 0x0a000100, 0x0a0001ff,
                                   0x0a000200});
  const AddressTable table(input);
  EXPECT_EQ(table.bucket_count(), 3u);
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.index_of(table.address_at(i)), i);
  }
}

TEST(AddressTable, UniverseEdges) {
  const AddressTable table(values_of({0x00000000, 0x000000ff, 0xffffff00,
                                         0xffffffff}));
  ASSERT_EQ(table.size(), 4u);
  EXPECT_EQ(table.index_of(Ipv4Address(0x00000000)), 0u);
  EXPECT_EQ(table.index_of(Ipv4Address(0xffffffff)), 3u);
  EXPECT_EQ(table.address_at(0), Ipv4Address(0x00000000));
  EXPECT_EQ(table.address_at(3), Ipv4Address(0xffffffff));
  // First and last /24 buckets exist; nothing in between resolves.
  EXPECT_EQ(table.bucket_count(), 2u);
  EXPECT_EQ(table.index_of(Ipv4Address(0x80000000)), AddressTable::kNotFound);
}

TEST(AddressTable, FromSortedUniqueMatchesCtor) {
  const AddressTable direct = AddressTable::from_sorted_unique(
      {0x01010101, 0x01010102, 0x20304050});
  const AddressTable general(
      values_of({0x20304050, 0x01010102, 0x01010101}));
  ASSERT_EQ(direct.size(), general.size());
  for (std::uint32_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct.address_at(i), general.address_at(i));
  }
}

TEST(AddressTable, RandomizedAgainstSortedVector) {
  Rng rng(2024);
  std::vector<std::uint32_t> input;
  for (int i = 0; i < 5000; ++i) {
    // Cluster into few /24s so buckets carry many entries.
    const std::uint32_t base = 0x0a000000 + (static_cast<std::uint32_t>(
                                                 rng.uniform(32))
                                             << 8);
    input.push_back(base + static_cast<std::uint32_t>(rng.uniform(256)));
  }
  const AddressTable table(input);
  std::vector<std::uint32_t> sorted = input;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  ASSERT_EQ(table.size(), sorted.size());
  for (std::uint32_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(table.address_at(i), Ipv4Address(sorted[i]));
    EXPECT_EQ(table.index_of(Ipv4Address(sorted[i])), i);
  }
  for (int i = 0; i < 2000; ++i) {
    const auto value = static_cast<std::uint32_t>(
        rng.bernoulli(0.5) ? 0x0a000000 + rng.uniform(32 * 256)
                           : rng.uniform(0x100000000ULL));
    const bool expected =
        std::binary_search(sorted.begin(), sorted.end(), value);
    EXPECT_EQ(table.contains(Ipv4Address(value)), expected) << value;
  }
  EXPECT_GT(table.memory_bytes(), 0u);
}

}  // namespace
}  // namespace reuse::net
