#include "crawler/vantage.h"

#include <gtest/gtest.h>

#include "dht/network.h"
#include "internet/world.h"
#include "simnet/event_queue.h"

namespace reuse::crawler {
namespace {

class VantageTest : public ::testing::Test {
 protected:
  static inet::WorldConfig world_config() {
    auto config = inet::test_world_config(29);
    config.as_count = 30;
    return config;
  }
};

TEST_F(VantageTest, PartitionsAreDisjointAndCoverEverything) {
  // Direct unit check on the partition function via allowed()-driven
  // discovery: crawl with 3 vantages and verify no address appears in two
  // vantages' evidence.
  const inet::World world(world_config());
  sim::EventQueue events;
  dht::DhtNetworkConfig dht_config;
  dht_config.seed = 7;
  dht::DhtNetwork network(world, events, dht_config);
  const net::TimeWindow window{net::SimTime(0), net::SimTime(86400)};

  VantageConfig config;
  config.base.seed = 11;
  config.vantage_count = 3;
  MultiVantageCrawler crawler(network.transport(), events,
                              network.bootstrap_endpoint(), config);
  crawler.start(window);
  events.run_until(window.end + net::Duration::minutes(5));

  std::size_t total = 0;
  std::unordered_set<net::Ipv4Address> seen;
  for (std::size_t v = 0; v < crawler.vantage_count(); ++v) {
    for (const auto& [address, evidence] : crawler.vantage(v).discovered()) {
      ++total;
      EXPECT_TRUE(seen.insert(address).second)
          << address.to_string() << " crawled by two vantages";
      EXPECT_EQ(std::hash<net::Ipv4Address>{}(address) % 3, v);
    }
  }
  const MergedResults merged = crawler.merged();
  EXPECT_EQ(merged.evidence.size(), total);
  EXPECT_GT(total, 0u);
}

TEST_F(VantageTest, MergedStatsAreComponentSums) {
  const inet::World world(world_config());
  sim::EventQueue events;
  dht::DhtNetworkConfig dht_config;
  dht_config.seed = 7;
  dht::DhtNetwork network(world, events, dht_config);

  VantageConfig config;
  config.base.seed = 11;
  config.vantage_count = 2;
  MultiVantageCrawler crawler(network.transport(), events,
                              network.bootstrap_endpoint(), config);
  crawler.start({net::SimTime(0), net::SimTime(43200)});
  events.run_until(net::SimTime(43200) + net::Duration::minutes(5));

  const MergedResults merged = crawler.merged();
  std::uint64_t pings = 0;
  std::size_t nated = 0;
  for (std::size_t v = 0; v < 2; ++v) {
    pings += crawler.vantage(v).stats().pings_sent;
    nated += crawler.vantage(v).nated().size();
  }
  EXPECT_EQ(merged.stats.pings_sent, pings);
  EXPECT_EQ(merged.nated.size(), nated);
}

TEST_F(VantageTest, EqualCoverageAtFractionalPerVantageBurden) {
  // The paper's burden argument: with an unconstrained budget, K vantages
  // reach (nearly) the same coverage while each one sends ~1/K of the
  // messages a single crawler would.
  const inet::World world(world_config());
  struct Run {
    std::size_t discovered;
    std::uint64_t messages;
  };
  auto run = [&](std::size_t vantages) {
    sim::EventQueue events;
    dht::DhtNetworkConfig dht_config;
    dht_config.seed = 7;
    dht::DhtNetwork network(world, events, dht_config);
    VantageConfig config;
    config.base.seed = 11;
    config.vantage_count = vantages;
    MultiVantageCrawler crawler(network.transport(), events,
                                network.bootstrap_endpoint(), config);
    crawler.start({net::SimTime(0), net::SimTime(43200)});
    events.run_until(net::SimTime(43200) + net::Duration::minutes(5));
    const MergedResults merged = crawler.merged();
    return Run{merged.evidence.size(),
               (merged.stats.get_nodes_sent + merged.stats.pings_sent) /
                   vantages};
  };
  const Run one = run(1);
  const Run four = run(4);
  EXPECT_GT(four.discovered, one.discovered * 8 / 10);  // >= 80% coverage
  EXPECT_LT(four.messages, one.messages / 2);  // far less per-network load
}

TEST_F(VantageTest, SingleVantageEqualsPlainCrawler) {
  const inet::World world(world_config());
  auto run_multi = [&] {
    sim::EventQueue events;
    dht::DhtNetworkConfig dht_config;
    dht_config.seed = 7;
    dht::DhtNetwork network(world, events, dht_config);
    VantageConfig config;
    config.base.seed = 11;
    config.vantage_count = 1;
    MultiVantageCrawler crawler(network.transport(), events,
                                network.bootstrap_endpoint(), config);
    crawler.start({net::SimTime(0), net::SimTime(43200)});
    events.run_until(net::SimTime(43200) + net::Duration::minutes(5));
    return crawler.merged().evidence.size();
  };
  auto run_plain = [&] {
    sim::EventQueue events;
    dht::DhtNetworkConfig dht_config;
    dht_config.seed = 7;
    dht::DhtNetwork network(world, events, dht_config);
    CrawlerConfig config;
    config.seed = 11 ^ 0x9e3779b9ULL;  // the seed a 1-vantage member gets
    Crawler crawler(network.transport(), events, network.bootstrap_endpoint(),
                    config);
    crawler.start({net::SimTime(0), net::SimTime(43200)});
    events.run_until(net::SimTime(43200) + net::Duration::minutes(5));
    return crawler.discovered().size();
  };
  EXPECT_EQ(run_multi(), run_plain());
}

}  // namespace
}  // namespace reuse::crawler
